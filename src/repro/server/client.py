"""The HTTP facade client: ``repro.connect("http://host:port")``.

A remote caller wants the same API as a local process — ``connect`` →
``prepare`` → a view with ``Sequence`` semantics — not a bag of JSON
requests.  :class:`HTTPConnection` mirrors
:class:`~repro.facade.Connection` over the wire, and
:class:`RemoteAnswerView` mirrors :class:`~repro.facade.AnswerView`:
positional access, lazy slice sub-views, chunked iteration, inverse
access (:meth:`~RemoteAnswerView.rank` / ``in`` / ``index``), and the
order-statistics task layer, each resolving to at most a few ``POST
/v1/session`` round-trips.

    >>> import repro
    >>> conn = repro.connect("http://127.0.0.1:8080")   # doctest: +SKIP
    >>> view = conn.prepare("Q(x, y, z) :- R(x, y), S(y, z)",
    ...                     order=["x", "y", "z"])      # doctest: +SKIP
    >>> len(view), view[0], view.rank(view[0])          # doctest: +SKIP
    (4, (1, 2, 7), 0)

Everything rides the versioned JSON session protocol
(:mod:`repro.session.protocol`, spec in ``docs/protocol.md``): the
server replays failed requests' exception types (``error_type``), so a
bad remote request raises the same :mod:`repro.errors` class a local
call would.  Only the stdlib :mod:`urllib` is used — no dependencies.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.errors import ProtocolError, ReproError
from repro.facade import WindowedAnswers
from repro.server.http import SESSION_ROUTE
from repro.session.protocol import (
    PROTOCOL_VERSION,
    SessionRequest,
    SessionResponse,
)

import repro.errors as _errors


def normalize_base_url(url: str) -> str:
    """A base URL with scheme and no trailing slash.

        >>> normalize_base_url("http://localhost:8080/")
        'http://localhost:8080'
        >>> normalize_base_url("127.0.0.1:8080")
        'http://127.0.0.1:8080'
    """
    url = url.strip().rstrip("/")
    if not url.startswith(("http://", "https://")):
        url = "http://" + url
    return url


def _raise_remote(response: SessionResponse) -> None:
    """Re-raise a failed response as the exception a local call raises.

    The server sends the library exception's class name in
    ``error_type``; unknown or missing types degrade to plain
    :class:`~repro.errors.ReproError`.
    """
    message = response.error or "request failed"
    exc_type = getattr(_errors, response.error_type or "", None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        raise exc_type(message)
    raise ReproError(message)


class HTTPConnection:
    """A prepared-query handle over a remote ``repro serve`` process.

    The HTTP twin of :class:`~repro.facade.Connection`: construct
    through :func:`repro.connect` with a URL.  Opening the connection
    pings ``GET /healthz`` once — a bad address fails fast, and the
    server's protocol version is checked against ours.

    Args:
        url: base URL of the server (scheme optional, ``http://``
            assumed).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, url: str, timeout: float = 30.0):
        self._base = normalize_base_url(url)
        self._timeout = timeout
        self._closed = False
        health = self._get_json("/healthz")
        remote_protocol = health.get("protocol")
        if (
            not isinstance(remote_protocol, int)
            or remote_protocol > PROTOCOL_VERSION
        ):
            raise ProtocolError(
                f"server at {self._base} speaks protocol "
                f"{remote_protocol!r}, this client speaks "
                f"{PROTOCOL_VERSION}"
            )
        self._health = health

    # -- transport ---------------------------------------------------------

    def _get_json(self, path: str) -> dict:
        request = urllib.request.Request(self._base + path)
        try:
            with urllib.request.urlopen(
                request, timeout=self._timeout
            ) as reply:
                body = reply.read().decode("utf-8", errors="replace")
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach repro server at {self._base}: {error}"
            ) from None
        try:
            return json.loads(body)
        except json.JSONDecodeError:
            # Some other service answered: fail fast with a clean
            # error, not a JSON traceback out of connect().
            raise ProtocolError(
                f"{self._base}{path} did not answer with JSON — is "
                "this really a repro server?"
            ) from None

    def request(self, request: SessionRequest) -> SessionResponse:
        """One protocol round-trip (the raw, never-raising layer)."""
        self._check_open()
        http_request = urllib.request.Request(
            self._base + SESSION_ROUTE,
            data=request.to_json().encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                http_request, timeout=self._timeout
            ) as reply:
                body = reply.read()
        except urllib.error.HTTPError as error:
            # Transport-level rejections (400/404/413/...) carry the
            # same structured SessionResponse body.
            body = error.read()
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach repro server at {self._base}: {error}"
            ) from None
        return SessionResponse.from_json(body.decode("utf-8"))

    def _call(self, op: str, **fields):
        """One op; raises the replayed library error on ``ok=False``."""
        response = self.request(SessionRequest(op=op, **fields))
        if not response.ok:
            _raise_remote(response)
        return response.result

    # -- the one API -------------------------------------------------------

    def prepare(
        self, query, order=None, prefix=None
    ) -> "RemoteAnswerView":
        """Preprocess ``query`` server-side; a remote answer view.

        The server plans (cache-aware) when ``order`` is ``None``,
        preprocesses, and replies with the served order and answer
        count; every later read on the view pins that exact order, so
        the view is stable even while other clients warm other orders.
        """
        result = self._call(
            "count",
            query=self._query_text(query),
            order=tuple(order) if order is not None else None,
            prefix=tuple(prefix) if prefix is not None else None,
        )
        return RemoteAnswerView(
            self,
            self._query_text(query),
            tuple(result["order"]),
            result["count"],
        )

    def plan(self, query, prefix=None) -> dict:
        """The order the server would serve with: ``{"order": [...],
        "iota": "..."}`` (the exponent as an exact fraction string)."""
        return self._call(
            "plan",
            query=self._query_text(query),
            prefix=tuple(prefix) if prefix is not None else None,
        )

    @staticmethod
    def _query_text(query) -> str:
        return query if isinstance(query, str) else str(query)

    # -- observability / lifecycle -----------------------------------------

    @property
    def url(self) -> str:
        return self._base

    @property
    def engine_name(self) -> str:
        return self._health["engine"]

    def health(self) -> dict:
        """A fresh ``GET /healthz`` snapshot."""
        return self._get_json("/healthz")

    def stats(self) -> dict:
        """``GET /stats``: shared-store, per-worker, and wire counters."""
        return self._get_json("/stats")

    def close(self) -> None:
        """Refuse further requests (the server is not affected)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("connection is closed")

    def __enter__(self) -> "HTTPConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"HTTPConnection({self._base!r}, {state})"


class RemoteAnswerView(WindowedAnswers):
    """Sorted answers of a remotely prepared query, as a lazy Sequence.

    The wire twin of :class:`~repro.facade.AnswerView`: both inherit
    the window and inverse-access laws from
    :class:`~repro.facade.WindowedAnswers` (negative indices, lazy
    slice sub-views with steps, chunked iteration,
    ``view[view.rank(t)] == t``, the task layer), so the two can never
    silently diverge.  Here the primitives go over HTTP — each batch
    of positional reads is one ``access`` request per ``ITER_CHUNK``
    indices (bounded bodies, arbitrarily large batches) and each rank
    probe one ``rank`` request.  Bounds are checked client-side
    against the count captured at :meth:`~HTTPConnection.prepare`
    time, so out-of-range indices never touch the network and
    iteration terminates without a round-trip.
    """

    #: Tuples per ``access`` request (iteration and batch reads).
    ITER_CHUNK = 512

    __slots__ = ("_connection", "_query", "_order", "_total")

    def __init__(
        self,
        connection: HTTPConnection,
        query: str,
        order: tuple[str, ...],
        total: int,
        window: range | None = None,
    ):
        self._connection = connection
        self._query = query
        self._order = order
        self._total = total
        self._window = range(total) if window is None else window

    # -- the windowed-Sequence primitives ----------------------------------

    def _resolve(self, underlying: list[int]) -> list[tuple]:
        # Chunked so an arbitrarily large batch (tuples_at over a huge
        # view, sample(k) with big k) can never outgrow the server's
        # request-body cap — each chunk is one bounded access op.
        out: list[tuple] = []
        for start in range(0, len(underlying), self.ITER_CHUNK):
            chunk = underlying[start : start + self.ITER_CHUNK]
            answers = self._connection._call(
                "access",
                query=self._query,
                order=self._order,
                indices=tuple(chunk),
            )["answers"]
            out.extend(tuple(answer) for answer in answers)
        return out

    def _rank_underlying(self, row: tuple) -> int | None:
        return self._connection._call(
            "rank",
            query=self._query,
            order=self._order,
            answer=tuple(row),
        )["rank"]

    def _subview(self, window: range) -> "RemoteAnswerView":
        return RemoteAnswerView(
            self._connection,
            self._query,
            self._order,
            self._total,
            window,
        )

    # -- provenance --------------------------------------------------------

    @property
    def query(self) -> str:
        return self._query

    @property
    def order(self) -> tuple[str, ...]:
        """The variable order the answers are sorted by."""
        return self._order

    @property
    def columns(self) -> tuple[str, ...]:
        """The variables of each answer tuple, in order position."""
        return self._order

    def __repr__(self) -> str:
        window = self._window
        full = window == range(self._total)
        span = "" if full else f", window={window!r}"
        return (
            f"RemoteAnswerView({self._query}, "
            f"order={list(self._order)}, len={len(self)}{span})"
        )


__all__ = ["HTTPConnection", "RemoteAnswerView", "normalize_base_url"]
