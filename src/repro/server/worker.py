"""The serving worker process: attach, serve, apply, drain.

Each worker is one OS process spawned by the
:class:`~repro.server.pool.WorkerPool`.  It attaches the published
database zero-copy (:mod:`repro.server.shm` /
:mod:`repro.data.flatbuf`), builds a private
:class:`~repro.session.ArtifactStore` + facade ``Connection`` over it,
and then serves a tagged-message loop on its control pipe:

* ``("request", json)`` — one protocol request; the reply is the
  response JSON (the exact bytes the HTTP layer writes, so threaded
  and process serving are wire-identical);
* ``("delta", Delta)`` — apply a mutation to the local store (PR 5's
  incremental dictionary/carry semantics run per process); replies
  with the new db_version;
* ``("stats",)`` / ``("ping",)`` / ``("drain",)`` — observability,
  health checks, graceful exit.

While handling a request the worker may interleave plane traffic
upstream — ``("plane_lookup", token)`` to attach a sibling's counting
forest instead of rebuilding it, ``("plane_publish", publication)``
after building one first — and the supervisor answers with
``("plane", ...)`` before the final ``("ok", ...)`` closes the
interaction.  One interaction is in flight per worker at a time (the
pool holds a per-worker slot), so the conversation never interleaves
two requests.

The worker never unlinks shared memory: segment lifetime is the
supervisor's (:class:`~repro.server.shm.SharedArtifactPlane`), and a
crashed worker's references are dropped by the supervisor's crash
detection, not by anything in this module.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from dataclasses import dataclass, field

from repro.chaos.faults import ChaosCrash
from repro.chaos.faults import fire as _chaos_fire

from repro.data.flatbuf import (
    database_from_buffers,
    forest_from_buffers,
    forest_to_buffers,
)
from repro.server.shm import (
    AttachedSegments,
    Publication,
    publish_from_worker,
    stable_token,
    unlink_publication,
)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to boot (picklable, spawn-safe).

    Exactly one of ``database`` (a plane publication to attach) and
    ``fallback_database`` (the pickled database itself, for engines or
    domains the flat-buffer layout cannot carry) is set.
    """

    name: str
    plane_prefix: str
    engine: str
    db_version: int = 0
    database: Publication | None = None
    fallback_database: object = None
    capacity: int | None = 64
    cache_slack: float = 0
    default_query: str | None = None
    shard_index: int | None = None
    #: MVCC policy mirrored from the supervisor's store, so pinned
    #: reads behave the same on whichever worker they land.  Workers
    #: never carry a WAL — the supervisor's store is the one appender.
    retain_versions: int | None = None
    strict_views: bool = False
    #: A chaos spec (:mod:`repro.chaos.faults` grammar) armed at boot,
    #: so injected worker processes inherit the supervisor's plan even
    #: when ``REPRO_CHAOS`` is not in the environment.
    chaos: str | None = None


@dataclass
class PlaneClient:
    """The worker-side front of the shared artifact plane.

    Installed as ``ArtifactStore.plane``: cold forest builds first ask
    the supervisor for a sibling's publication (zero-copy attach), and
    locally built forests are published back for the siblings.  Only
    the ``forest`` kind rides the plane — bag tables and assembled
    ``DirectAccess`` structures hold Python closures, and plans are
    cheap.  Every path degrades silently to a local build: the plane
    is an optimization, never a correctness dependency.
    """

    pipe: object
    prefix: str
    #: Token namespace.  Empty for identical workers (they share one
    #: database, so equal keys mean equal forests); ``"s<k>:"`` for
    #: shard ``k`` — shard workers hold *different* databases, and an
    #: unscoped token would hand shard ``k`` a sibling shard's forest.
    scope: str = ""
    store: object = None
    attachments: list = field(default_factory=list)
    fetches: int = 0
    fetch_misses: int = 0
    publishes: int = 0

    def _roundtrip(self, message):
        self.pipe.send(message)
        reply = self.pipe.recv()
        if not (isinstance(reply, tuple) and reply[0] == "plane"):
            raise RuntimeError(f"unexpected plane reply: {reply!r}")  # repro: noqa[EXC-TAXONOMY] -- IPC framing corruption; fetch/offer fall back to a local build
        return reply[1]

    def fetch(self, kind: str, key, version: int):
        if kind != "forest" or self.store is None:
            return None
        try:
            token = f"forest:{self.scope}{version}:{stable_token(key)}"
            publication = self._roundtrip(("plane_lookup", token))
            if publication is None:
                self.fetch_misses += 1
                return None
            attached = AttachedSegments(publication)
            # Rebuild against the database *at the requested version*,
            # not the head: a pinned read fetching a retained-version
            # forest from the plane must bind it to the matching MVCC
            # snapshot (database_at raises StaleViewError when the
            # snapshot is gone, which the broad except below turns
            # into an honest miss).
            forest = forest_from_buffers(
                publication.manifest,
                attached.views,
                self.store.database_at(version),
            )
            # The SharedMemory handles must outlive the forest's numpy
            # views; the store may evict the forest but the attachment
            # stays mapped until process exit (segment *lifetime* is
            # supervisor-side refcounting, not worker GC).
            self.attachments.append(attached)
            self.fetches += 1
            return forest
        except ChaosCrash:
            raise
        except Exception:
            if os.environ.get("REPRO_PLANE_DEBUG"):
                traceback.print_exc()
            return None

    def offer(self, kind: str, key, version: int, value) -> None:
        if kind != "forest" or self.store is None:
            return
        try:
            database = self.store.database_at(version)
            shared = getattr(database, "shared_dictionary", None)
            flat = forest_to_buffers(value, shared)
            if flat is None:
                return
            manifest, buffers = flat
            token = f"forest:{self.scope}{version}:{stable_token(key)}"
            publication = publish_from_worker(
                self.prefix, token, manifest, buffers
            )
            if self._roundtrip(("plane_publish", publication)):
                self.publishes += 1
            else:
                unlink_publication(publication)
        except ChaosCrash:
            raise
        except Exception:
            if os.environ.get("REPRO_PLANE_DEBUG"):
                traceback.print_exc()

    def counters(self) -> dict:
        return {
            "forest_fetches": self.fetches,
            "forest_fetch_misses": self.fetch_misses,
            "forest_publishes": self.publishes,
            "attachments": len(self.attachments),
        }


def _boot(spec: WorkerSpec, pipe):
    """Attach the database and assemble the serving stack."""
    from repro.facade import Connection
    from repro.session.artifacts import ArtifactStore
    from repro.session.session import AccessSession

    attachments = []
    if spec.database is not None:
        attached = AttachedSegments(spec.database)
        attachments.append(attached)
        database = database_from_buffers(
            spec.database.manifest, attached.views
        )
    else:
        database = spec.fallback_database
    store = ArtifactStore(
        database,
        engine=spec.engine,
        capacity=spec.capacity,
        db_version=spec.db_version,
        retain_versions=spec.retain_versions,
        strict_views=spec.strict_views,
    )
    plane = PlaneClient(
        pipe=pipe,
        prefix=spec.plane_prefix,
        scope=(
            f"s{spec.shard_index}:"
            if spec.shard_index is not None
            else ""
        ),
    )
    plane.store = store
    plane.attachments.extend(attachments)
    store.plane = plane
    session = AccessSession(store=store, cache_slack=spec.cache_slack)
    return store, plane, Connection(session)


def worker_main(spec: WorkerSpec, pipe) -> None:
    """Process entry point (must stay importable for spawn)."""
    # The supervisor coordinates shutdown over the pipe; a terminal's
    # Ctrl-C — and a SIGTERM from timeout(1)/systemd, which signal the
    # whole process group — must not kill workers before the primary
    # drains them.  If the primary dies without draining, the control
    # pipe's EOF ends the loop below anyway.
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            pass
    if spec.chaos:
        from repro.chaos import faults

        faults.arm(spec.chaos)
    try:
        store, plane, connection = _boot(spec, pipe)
    except BaseException as error:  # noqa: BLE001 - report, then die
        try:
            pipe.send(("err", f"worker boot failed: {error!r}"))
        finally:
            pipe.close()
        return
    from repro.query.parser import parse_query
    from repro.session.protocol import SessionRequest, execute

    default_query = (
        parse_query(spec.default_query)
        if spec.default_query is not None
        else None
    )
    pipe.send(("ready", store.db_version))
    try:
        while True:
            try:
                message = pipe.recv()
            except (EOFError, OSError):
                break
            tag = message[0]
            try:
                if tag == "request":
                    request = SessionRequest.from_json(message[1])
                    response = execute(
                        connection, request, default_query=default_query
                    )
                    pipe.send(("ok", response.to_json()))
                elif tag == "delta":
                    pipe.send(("ok", store.apply(message[1])))
                elif tag == "stats":
                    pipe.send(
                        (
                            "ok",
                            {
                                "session": (
                                    connection.session.stats.as_dict()
                                ),
                                "store": store.cache_stats(),
                                "plane": plane.counters(),
                            },
                        )
                    )
                elif tag == "ping":
                    if _chaos_fire("pool.slow_ping"):
                        time.sleep(0.05)
                    pipe.send(("ok", "pong"))
                elif tag == "drain":
                    pipe.send(("ok", None))
                    break
                else:
                    pipe.send(("err", f"unknown message tag {tag!r}"))
            except ChaosCrash:
                # An injected crash must look like a real process
                # death: unwind, die, and let the supervisor's crash
                # detection respawn us.  Sending ("err", ...) here
                # would acknowledge past the crash.
                raise
            except Exception as error:  # noqa: BLE001 - keep serving
                # Library errors were already converted by execute();
                # anything reaching here is unexpected, but one bad
                # message must not kill the worker.
                try:
                    pipe.send(("err", repr(error)))
                except (BrokenPipeError, OSError):
                    break
    finally:
        for attached in plane.attachments:
            attached.close()
        pipe.close()


__all__ = ["PlaneClient", "WorkerSpec", "worker_main"]
