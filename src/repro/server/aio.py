"""The asyncio serving front: ``repro serve --async``.

The threaded front (:class:`~repro.server.http.ReproServer`) spends
one OS thread per open connection, so its concurrency ceiling is
thread-pool scale and a slow client occupies a whole thread while it
dribbles bytes.  This front multiplexes *all* connections onto one
event loop: an :func:`asyncio.start_server` accept loop parses
HTTP/1.1 itself (keep-alive, pipelining-safe framing, per-read
timeouts, a connection ceiling) and hands each decoded
:class:`~repro.session.SessionRequest` to the same
:class:`~repro.server.http.ServingCore` the threaded front wraps —
same bounded depth-aware dispatch, same backends, same wire shapes.
Connections are cheap (a coroutine and a buffer, no thread), so
thousands of keep-alive clients can sit open while at most
``workers × queue_depth`` requests are actually admitted; the gap
between the two fronts is measured by
``benchmarks/bench_procs.py --connections``.

Framing is the simple profile the session protocol needs: heads are
read with ``readuntil(b"\\r\\n\\r\\n")`` (bounded by
:data:`MAX_HEAD_BYTES`), bodies with ``readexactly(Content-Length)``
— chunked bodies are rejected with 411 like the threaded front.
Because the stream reader buffers, a client that pipelines several
requests in one write gets each answered in order from the same
buffer, no bytes lost between requests.  Every read and every write
drain carries ``request_timeout``, so a stalled client costs one idle
coroutine, never a stuck loop.

Overload shows up in exactly two places, both structured: admission
full → HTTP 503 + ``Retry-After`` (:class:`~repro.errors.
OverloadedError`, as on the threaded front), and the connection
ceiling → the same 503 before the request is even read.  Blocking
query work never runs on the loop: ``core.execute`` is bridged onto a
thread pool sized to the dispatch capacity, so the loop stays free to
accept, frame, and time out sockets.

Start one from Python (or ``repro serve --async`` from a shell)::

    from repro.server.aio import AsyncReproServer

    with AsyncReproServer({"R": {(1, 2)}}, workers=4) as server:
        conn = repro.connect(server.url)   # same client, same wire
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.errors import OverloadedError, ProtocolError
from repro.server.http import (
    DEFAULT_REQUEST_TIMEOUT,
    MAX_BODY_BYTES,
    RETRY_AFTER_SECONDS,
    SESSION_ROUTE,
    ServingCore,
    _ServerCounters,
    error_body,
)
from repro.session.protocol import SessionRequest

#: Default cap on simultaneously open connections.  Far above the
#: threaded front's thread-pool scale, far below fd exhaustion; the
#: ceiling answers 503 *before* reading the request, so a connection
#: flood degrades loudly instead of starving accepted clients.
DEFAULT_MAX_CONNECTIONS = 1024

#: Bound on one request head (request line + headers).  A session
#: request's head is a few hundred bytes; this is also the stream
#: reader's buffer limit, so an unbounded head cannot balloon memory.
MAX_HEAD_BYTES = 32 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Content Too Large",
    503: "Service Unavailable",
}


class AsyncReproServer:
    """An event-loop HTTP server over one :class:`ServingCore`.

    Same constructor surface, routes, and wire shapes as the threaded
    :class:`~repro.server.http.ReproServer` — ``--async`` is a front
    swap, not a protocol change — plus the knobs that only make sense
    when connections are multiplexed:

    Args:
        max_connections: ceiling on simultaneously open connections;
            excess connections get an immediate structured 503 with
            ``Retry-After`` and are closed.
        request_timeout: per-read/per-write-drain timeout, seconds.  A
            connection that stalls past it is closed.
        drain_timeout: on shutdown, how long to wait for in-flight
            requests to finish before cancelling their connections.

    The loop runs on a daemon background thread (``start()`` /
    context manager), so the blocking API matches the threaded front;
    ``serve_forever()`` serves in the foreground for the CLI.
    """

    def __init__(
        self,
        database,
        engine=None,
        workers: int = 4,
        capacity: int | None = 64,
        cache_slack=0,
        default_query=None,
        host: str = "127.0.0.1",
        port: int = 0,
        stats_per_worker: bool = False,
        verbose: bool = False,
        procs: int | None = None,
        shards: int | None = None,
        read_only: bool = False,
        shard_relation: str | None = None,
        shard_variable: str | None = None,
        start_method: str = "spawn",
        queue_depth: int | None = None,
        shard_backends: list[str] | None = None,
        wal: str | None = None,
        retain_versions: int | None = None,
        strict_views: bool = False,
        chaos: str | None = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        drain_timeout: float = 10.0,
    ):
        if max_connections < 1:
            raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
                f"need room for at least one connection, "
                f"got {max_connections}"
            )
        self.core = ServingCore(
            database,
            engine=engine,
            workers=workers,
            capacity=capacity,
            cache_slack=cache_slack,
            default_query=default_query,
            stats_per_worker=stats_per_worker,
            procs=procs,
            shards=shards,
            read_only=read_only,
            shard_relation=shard_relation,
            shard_variable=shard_variable,
            start_method=start_method,
            queue_depth=queue_depth,
            shard_backends=shard_backends,
            wal=wal,
            retain_versions=retain_versions,
            strict_views=strict_views,
            chaos=chaos,
        )
        self.verbose = verbose
        self.counters = _ServerCounters()
        self.request_timeout = request_timeout
        self.max_connections = max_connections
        self.drain_timeout = drain_timeout
        self.clean_shutdown: bool | None = None
        self.connections_peak = 0
        self.ceiling_rejections = 0
        # Query work is synchronous (the core, the engines); it runs on
        # this pool, sized to the dispatch bound — beyond it admission
        # rejects anyway, so more threads would only queue twice.
        self._executor = ThreadPoolExecutor(
            max_workers=min(self.core.dispatch_capacity, 128) + 4,
            thread_name_prefix="repro-aio",
        )
        self._requested = (host, port)
        self._address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._boot_error: BaseException | None = None
        self._conns: dict = {}  # task -> {"busy": bool}; loop-thread only
        self._draining = False
        self._drained_clean = True
        self._closed = False

    # -- the wrapped core --------------------------------------------------

    @property
    def store(self):
        return self.core.store

    @property
    def workers(self) -> int:
        return self.core.workers

    @property
    def default_query(self):
        return self.core.default_query

    @property
    def read_only(self) -> bool:
        return self.core.read_only

    @property
    def _backend(self):
        return self.core._backend

    # -- addresses ---------------------------------------------------------

    @property
    def host(self) -> str:
        return (self._address or self._requested)[0]

    @property
    def port(self) -> int:
        return (self._address or self._requested)[1]

    @property
    def url(self) -> str:
        """Base URL clients connect to (``repro.connect(server.url)``)."""
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "AsyncReproServer":
        """Run the loop on a daemon background thread; returns once the
        listening socket is bound (or raises the bind error)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop,
                daemon=True,
                name="repro-aio-loop",
            )
            self._thread.start()
            self._ready.wait()
            if self._boot_error is not None:
                self._thread.join()
                self._thread = None
                self._executor.shutdown(wait=False)
                self.core.close()
                raise self._boot_error
        return self

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # pragma: no cover - loop bugs
            self._boot_error = error
        finally:
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        host, port = self._requested
        try:
            server = await asyncio.start_server(
                self._handle_connection,
                host,
                port,
                limit=MAX_HEAD_BYTES,
            )
        except OSError as error:
            self._boot_error = error
            self._ready.set()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        await self._stop.wait()
        self._draining = True
        server.close()
        await server.wait_closed()
        await self._drain_connections()

    async def _drain_connections(self) -> None:
        """Idle connections are cancelled outright; busy ones get
        ``drain_timeout`` to finish their in-flight request and write
        the response (the SIGTERM contract of ``repro serve``)."""
        for task, state in list(self._conns.items()):
            if not state["busy"]:
                task.cancel()
        tasks = list(self._conns)
        if not tasks:
            return
        _done, pending = await asyncio.wait(
            tasks, timeout=self.drain_timeout
        )
        if pending:
            self._drained_clean = False
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

    def request_shutdown(self) -> None:
        """Begin shutdown without blocking (signal-handler-safe); the
        caller then runs :meth:`shutdown` to finish."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed: nothing left to stop

    def serve_forever(self) -> None:
        """Serve in the foreground until :meth:`request_shutdown` (the
        CLI's SIGTERM handler) or KeyboardInterrupt."""
        self.start()
        thread = self._thread
        while thread is not None and thread.is_alive():
            thread.join(timeout=0.5)

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop accepting, drain connections and workers, unlink
        shared memory.  Sets :attr:`clean_shutdown`: ``True`` when
        every in-flight request finished and every worker drained
        cleanly.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=timeout + self.drain_timeout)
            self._thread = None
        self._executor.shutdown(wait=False)
        clean = self.core.close(timeout=timeout)
        self.clean_shutdown = clean and self._drained_clean

    def close(self, timeout: float = 10.0) -> None:
        """Alias for :meth:`shutdown` (symmetry with the pool/plane)."""
        self.shutdown(timeout=timeout)

    def __enter__(self) -> "AsyncReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- the accept path ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        if self._draining or len(self._conns) >= self.max_connections:
            # Reject before reading anything: under a connection flood
            # the cheapest honest answer is a structured 503 so the
            # client backs off, instead of an opaque RST or a slot
            # taken from an accepted client.
            self.ceiling_rejections += 1
            try:
                await self._send(
                    writer,
                    503,
                    error_body(
                        f"connection ceiling reached "
                        f"({self.max_connections} open); retry shortly",
                        error_type=OverloadedError.__name__,
                    ),
                    keep_alive=False,
                    retry_after=True,
                )
            except (ConnectionError, OSError, TimeoutError):
                pass
            writer.close()
            return
        task = asyncio.current_task()
        state = {"busy": False}
        self._conns[task] = state
        self.connections_peak = max(
            self.connections_peak, len(self._conns)
        )
        try:
            await self._serve_connection(reader, writer, state)
        except asyncio.CancelledError:
            pass  # drain cancelled an idle connection
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            TimeoutError,
            ConnectionError,
            OSError,
        ):
            pass  # client went away or stalled: drop the connection
        finally:
            self._conns.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader, writer, state) -> None:
        """One keep-alive connection: frame requests off the buffer
        until the client closes, stalls, or asks to close."""
        while not self._draining:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"),
                    self.request_timeout,
                )
            except asyncio.IncompleteReadError:
                return  # client closed between requests: clean end
            except asyncio.LimitOverrunError:
                await self._send(
                    writer,
                    400,
                    error_body(
                        f"request head exceeds {MAX_HEAD_BYTES} bytes"
                    ),
                    keep_alive=False,
                )
                return
            # Busy from first head byte to last response byte: drain
            # waits for this request instead of cancelling it.
            state["busy"] = True
            try:
                keep_alive = await self._serve_request(
                    reader, writer, head
                )
            finally:
                state["busy"] = False
            if not keep_alive:
                return

    async def _serve_request(self, reader, writer, head: bytes) -> bool:
        """Parse one framed request and answer it; whether the
        connection may carry another."""
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            await self._send(
                writer,
                400,
                error_body(f"malformed request line {lines[0]!r}"),
                keep_alive=False,
            )
            return False
        method, path, version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
        )
        if method == "GET":
            return await self._serve_get(writer, path, keep_alive)
        if method != "POST":
            await self._send(
                writer,
                405,
                error_body(f"unsupported method {method!r}"),
                keep_alive=keep_alive,
            )
            return keep_alive
        if path.rstrip("/") != SESSION_ROUTE.rstrip("/"):
            await self._send(
                writer,
                404,
                error_body(
                    f"unknown path {path!r}; "
                    f"POST requests go to {SESSION_ROUTE}"
                ),
                keep_alive=keep_alive,
            )
            return keep_alive
        try:
            length = int(headers.get("content-length", ""))
            if length < 0:
                raise ValueError(length)  # repro: noqa[EXC-TAXONOMY] -- local control flow, caught two lines down
        except ValueError:
            # Unknown framing (e.g. chunked): the connection cannot be
            # reused, the next "request" would be body bytes.
            await self._send(
                writer,
                411,
                error_body("request needs a Content-Length"),
                keep_alive=False,
            )
            return False
        if length > MAX_BODY_BYTES:
            await self._drain_body(reader, length)
            await self._send(
                writer,
                413,
                error_body(
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                ),
                keep_alive=False,
            )
            return False
        raw = await asyncio.wait_for(
            reader.readexactly(length), self.request_timeout
        )
        try:
            request = SessionRequest.from_json(raw.decode("utf-8"))
        except UnicodeDecodeError:
            await self._send(
                writer,
                400,
                error_body("request body is not UTF-8"),
                keep_alive=keep_alive,
            )
            return keep_alive
        except ProtocolError as error:
            await self._send(
                writer,
                400,
                error_body(str(error)),
                keep_alive=keep_alive,
            )
            return keep_alive
        self.counters.count_request(request.op)
        try:
            # Query work is blocking; off the loop it goes.  Admission
            # happens inside, so a full fleet rejects in microseconds
            # and the executor never piles up past dispatch capacity.
            response = await self._loop.run_in_executor(
                self._executor, self.core.execute, request
            )
        except OverloadedError as error:
            await self._send(
                writer,
                503,
                error_body(
                    str(error),
                    request.op,
                    OverloadedError.__name__,
                ),
                keep_alive=keep_alive,
                retry_after=True,
            )
            return keep_alive
        body = response.to_json().encode("utf-8")
        if not response.ok and response.error_type == "ReadOnlyError":
            await self._send(
                writer, 403, body, keep_alive=keep_alive
            )
        else:
            await self._send(
                writer, 200, body, keep_alive=keep_alive
            )
        return keep_alive

    async def _serve_get(self, writer, path: str, keep_alive: bool) -> bool:
        if path == "/healthz":
            import json

            body = json.dumps(self.health(), default=str).encode()
            await self._send(
                writer, 200, body, keep_alive=keep_alive
            )
        elif path == "/stats":
            import json

            # Stats aggregation takes backend locks: off the loop too.
            stats = await self._loop.run_in_executor(
                self._executor, self.stats
            )
            body = json.dumps(stats, default=str).encode()
            await self._send(
                writer, 200, body, keep_alive=keep_alive
            )
        elif path.rstrip("/") == SESSION_ROUTE.rstrip("/"):
            await self._send(
                writer,
                405,
                error_body(f"use POST for {SESSION_ROUTE}"),
                keep_alive=keep_alive,
            )
        else:
            await self._send(
                writer,
                404,
                error_body(
                    f"unknown path {path!r}; serving "
                    f"POST {SESSION_ROUTE}, GET /healthz, GET /stats"
                ),
                keep_alive=keep_alive,
            )
        return keep_alive

    async def _drain_body(self, reader, length: int) -> None:
        """Read (bounded) past an oversized body so the client can
        finish writing and see the 413 instead of a broken pipe."""
        remaining = min(length, 16 * MAX_BODY_BYTES)
        while remaining > 0:
            chunk = await asyncio.wait_for(
                reader.read(min(remaining, 1 << 16)),
                self.request_timeout,
            )
            if not chunk:
                break
            remaining -= len(chunk)

    async def _send(
        self,
        writer,
        status: int,
        body: bytes,
        *,
        keep_alive: bool,
        retry_after: bool = False,
    ) -> None:
        if status >= 400:
            self.counters.count_error(status)
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if retry_after:
            head.append(f"Retry-After: {RETRY_AFTER_SECONDS}")
        writer.write(
            "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + body
        )
        # The drain timeout is the *write* half of slow-client
        # robustness: a client that never reads its response trips it
        # once the transport buffer fills.
        await asyncio.wait_for(writer.drain(), self.request_timeout)

    # -- observability -----------------------------------------------------

    def health(self) -> dict:
        return dict(
            self.core.health(front="async"),
            max_connections=self.max_connections,
        )

    def stats(self) -> dict:
        """Core stats plus the front's multiplexing counters."""
        stats = self.core.stats(self.counters.as_dict())
        stats["front"] = {
            "kind": "async",
            "connections_open": len(self._conns),
            "connections_peak": self.connections_peak,
            "max_connections": self.max_connections,
            "ceiling_rejections": self.ceiling_rejections,
        }
        return stats

    def __repr__(self) -> str:
        return (
            f"AsyncReproServer({self.url}, engine="
            f"{self.store.engine.name!r}, workers={self.workers}, "
            f"max_connections={self.max_connections})"
        )


__all__ = [
    "AsyncReproServer",
    "DEFAULT_MAX_CONNECTIONS",
    "MAX_HEAD_BYTES",
]
