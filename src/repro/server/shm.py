"""The shared-memory artifact plane: one physical copy per artifact.

The primary (supervisor) process publishes flat-buffer artifacts
(:mod:`repro.data.flatbuf`) into named
:mod:`multiprocessing.shared_memory` segments; worker processes attach
numpy views zero-copy, so an :class:`~repro.data.database.EncodedDatabase`
or a counting forest exists **once** in physical memory no matter how
many workers serve it.

Ownership and lifetime are supervisor-side and explicit — nothing here
relies on garbage collection across processes:

* every publication is a set of segments plus a picklable manifest,
  registered under a logical *token* (e.g. ``db:3`` for database
  version 3);
* the plane tracks, per publication, which *holders* (worker names)
  attached it; a publication is unlinked when it has been *retired*
  (superseded by a newer version) **and** its last holder released —
  exactly the "old segments are refcounted and unlinked when the last
  worker detaches" contract;
* worker crash or respawn releases everything that worker held
  (:meth:`SharedArtifactPlane.release_holder`);
* :meth:`SharedArtifactPlane.close` unlinks every live segment
  unconditionally — after it, ``/dev/shm`` holds nothing of this
  server's.

Workers may also *publish* (a forest they were first to build): they
create the segments, hand the names to the supervisor over the control
pipe, and the plane adopts them — re-registering them with the
primary's resource tracker so a primary crash still reclaims them.

Resource-tracker note (Python 3.11): every ``SharedMemory`` attach
registers the name with the process's resource tracker — but spawn
children *share the primary's tracker process* (the tracker fd rides
the spawn preparation data), and the tracker's cache is a **set**.  So
a worker attach is an idempotent re-add of a name the primary already
registered at create, and the primary's eventual ``unlink()`` is the
single balancing unregister.  Nothing here may call
``resource_tracker.unregister`` for a plane segment: one extra remove
from the shared set makes the *next* legitimate unregister raise
``KeyError`` inside the tracker process.  (CPython 3.13 later added
``track=False`` for the genuinely-foreign-process case; we never need
it because all attachers are spawn children of the publishing
primary.)
"""

from __future__ import annotations

import hashlib
import os
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from repro.chaos.faults import fire as _chaos_fire

#: Segment names stay well under the POSIX 255-byte limit; the prefix
#: carries the primary's pid so leaked segments are attributable.
_NAME_BYTES = 4


def plane_prefix() -> str:
    return f"repro_{os.getpid()}_{secrets.token_hex(_NAME_BYTES)}"


def stable_token(key) -> str:
    """A short process-independent digest of an artifact cache key.

    Workers compute the same token for the same key regardless of hash
    randomization: unordered collections are canonicalized by sorted
    repr before digesting.  Keys are the store's artifact keys —
    tuples of strings, ints, tuples, and frozensets of strings.
    """
    return hashlib.sha1(_canonical(key).encode("utf-8")).hexdigest()[:16]


def _canonical(value) -> str:
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(_canonical(v) for v in value) + ")"
    return f"{type(value).__name__}:{value!r}"


def _raw(array) -> memoryview:
    """A flat byte view of ``array``, copy-free when possible.

    ``memoryview.cast`` rejects zero-length and non-C-contiguous
    views; both are rare (empty bags, sliced columns) and small enough
    that a byte copy is the right fallback.
    """
    view = memoryview(array)
    if view.nbytes == 0:
        return memoryview(b"")
    if not view.c_contiguous:
        view = memoryview(view.tobytes())
    return view.cast("B")


def _track(name: str) -> None:
    try:
        resource_tracker.register(f"/{name}", "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary  # repro: noqa[EXC-CHAOS] -- resource_tracker internals vary; no fault point fires here
        pass


@dataclass(frozen=True)
class Publication:
    """One published artifact: manifest + named segments.

    ``segments`` maps the manifest's buffer names to shared-memory
    segment names.  The whole object is picklable and travels over
    control pipes; the bulk data never does.
    """

    token: str
    manifest: object
    segments: tuple[tuple[str, str], ...]
    nbytes: int


class PlaneCounters:
    """Zero-copy evidence: segment and byte accounting for one plane."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.segments_created = 0
        self.bytes_published = 0
        self.publications = 0
        self.attaches = 0
        self.releases = 0
        self.unlinks = 0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "segments_created": self.segments_created,
                "bytes_published": self.bytes_published,
                "publications": self.publications,
                "attaches": self.attaches,
                "releases": self.releases,
                "unlinks": self.unlinks,
            }


class _Entry:
    __slots__ = ("publication", "shms", "holders", "retired")

    def __init__(self, publication, shms):
        self.publication = publication
        self.shms = shms  # name -> SharedMemory (None for adopted)
        self.holders: set[str] = set()
        self.retired = False


class SharedArtifactPlane:
    """Supervisor-side registry of published segments and their holders.

    All bookkeeping is plain dicts under one lock in the primary
    process — workers never mutate refcounts directly, they report
    attach/detach over their control pipe and the supervisor calls
    :meth:`acquire` / :meth:`release_holder` on their behalf.  That
    keeps the refcounts crash-consistent: a worker that dies without
    a goodbye still gets its references dropped by the supervisor's
    crash detection.
    """

    def __init__(self, prefix: str | None = None):
        self.prefix = prefix or plane_prefix()
        self.counters = PlaneCounters()
        self._lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        self._sequence = 0
        self._closed = False

    # -- publishing --------------------------------------------------------

    def _next_name(self) -> str:
        self._sequence += 1
        return f"{self.prefix}_{self._sequence}"

    def publish(self, token: str, manifest, buffers) -> Publication:
        """Copy ``buffers`` (name -> ndarray) into fresh segments.

        The one physical copy happens here; every later attach is a
        mapping.  Re-publishing an existing token returns the existing
        publication (idempotent — two callers racing to publish the
        same artifact is the build-dedup path's job to prevent, but
        must not corrupt the plane).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("artifact plane is closed")  # repro: noqa[EXC-TAXONOMY] -- use-after-close is a caller bug; RuntimeError is the test contract
            existing = self._entries.get(token)
            if existing is not None:
                return existing.publication
            names: list[tuple[str, str]] = []
            shms: dict[str, shared_memory.SharedMemory] = {}
            total = 0
            try:
                for buffer_name, array in buffers.items():
                    data = _raw(array)
                    segment = shared_memory.SharedMemory(
                        create=True,
                        name=self._next_name(),
                        size=max(data.nbytes, 1),
                    )
                    segment.buf[: data.nbytes] = data
                    names.append((buffer_name, segment.name))
                    shms[segment.name] = segment
                    total += data.nbytes
            except BaseException:
                for segment in shms.values():
                    segment.close()
                    segment.unlink()
                raise
            publication = Publication(
                token=token,
                manifest=manifest,
                segments=tuple(names),
                nbytes=total,
            )
            self._entries[token] = _Entry(publication, shms)
            with self.counters._lock:
                self.counters.segments_created += len(shms)
                self.counters.bytes_published += total
                self.counters.publications += 1
            return publication

    def adopt(self, publication: Publication, holder: str) -> bool:
        """Register segments a *worker* created (and untracked), with
        ``holder`` as their first reference.

        The supervisor re-tracks them so a primary crash reclaims
        them.  Returns ``False`` when the token already exists (the
        racing worker keeps serving from its private copy; the plane
        keeps exactly one canonical publication per token) or the
        plane is closed — the caller should then unlink its segments.
        """
        with self._lock:
            if self._closed or publication.token in self._entries:
                return False
            entry = _Entry(publication, shms={})
            entry.holders.add(holder)
            self._entries[publication.token] = entry
            for _buffer_name, segment_name in publication.segments:
                _track(segment_name)
            with self.counters._lock:
                self.counters.segments_created += len(
                    publication.segments
                )
                self.counters.bytes_published += publication.nbytes
                self.counters.publications += 1
                self.counters.attaches += 1
            return True

    # -- refcounts ---------------------------------------------------------

    def acquire(self, token: str, holder: str) -> Publication | None:
        """Look up a publication and record ``holder``'s reference."""
        with self._lock:
            entry = self._entries.get(token)
            if entry is None or entry.retired:
                return None
            entry.holders.add(holder)
            with self.counters._lock:
                self.counters.attaches += 1
            return entry.publication

    def holders_of(self, token: str) -> set[str]:
        with self._lock:
            entry = self._entries.get(token)
            return set(entry.holders) if entry else set()

    def release(self, token: str, holder: str) -> None:
        with self._lock:
            entry = self._entries.get(token)
            if entry is None or holder not in entry.holders:
                return
            entry.holders.discard(holder)
            with self.counters._lock:
                self.counters.releases += 1
            self._maybe_unlink(token, entry)

    def release_holder(self, holder: str) -> None:
        """Drop every reference ``holder`` had (worker exit, crash,
        respawn) and unlink whatever that strands."""
        with self._lock:
            for token, entry in list(self._entries.items()):
                if holder in entry.holders:
                    entry.holders.discard(holder)
                    with self.counters._lock:
                        self.counters.releases += 1
                    self._maybe_unlink(token, entry)

    def retire(self, token: str) -> None:
        """Supersede a publication: the supervisor stops handing it
        out; its segments live on until the last holder releases."""
        with self._lock:
            entry = self._entries.get(token)
            if entry is None:
                return
            entry.retired = True
            self._maybe_unlink(token, entry)

    def _maybe_unlink(self, token: str, entry: _Entry) -> None:
        # Lock held by caller.
        if entry.retired and not entry.holders:
            self._unlink_entry(token, entry)

    def _unlink_entry(self, token: str, entry: _Entry) -> None:
        self._entries.pop(token, None)
        for _buffer_name, segment_name in entry.publication.segments:
            segment = entry.shms.get(segment_name)
            try:
                if segment is None:
                    # Attaching registers with the resource tracker
                    # (3.11 behavior) and unlink() unregisters — one
                    # add, one remove; adding an _untrack here would
                    # double-remove and KeyError the tracker process.
                    segment = shared_memory.SharedMemory(
                        name=segment_name
                    )
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            with self.counters._lock:
                self.counters.unlinks += 1

    # -- introspection / lifecycle -----------------------------------------

    def lookup(self, token: str) -> Publication | None:
        """The publication under ``token`` (no refcount change)."""
        with self._lock:
            entry = self._entries.get(token)
            if entry is None or entry.retired:
                return None
            return entry.publication

    def tokens(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def live_segments(self) -> list[str]:
        """Every segment name currently backed by shared memory."""
        with self._lock:
            return sorted(
                segment_name
                for entry in self._entries.values()
                for _buffer, segment_name in entry.publication.segments
            )

    def close(self) -> None:
        """Unlink everything, holders or not (server shutdown)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for token, entry in list(self._entries.items()):
                self._unlink_entry(token, entry)


class AttachedSegments:
    """Worker-side handle over one publication's mapped segments.

    Keeps the :class:`SharedMemory` objects alive for as long as numpy
    views reference their buffers; :meth:`close` unmaps (never
    unlinks — lifetime is the supervisor's call).
    """

    def __init__(self, publication: Publication):
        self.publication = publication
        self._shms: list[shared_memory.SharedMemory] = []
        self.views: dict[str, memoryview] = {}
        try:
            # Fault point ``shm.attach``: the named segment vanished
            # (teardown race, /dev/shm pressure) — the attach must fail
            # cleanly, never half-map.
            if _chaos_fire("shm.attach"):
                raise OSError(  # repro: noqa[EXC-TAXONOMY] -- chaos injection mimics the OS error the attach path handles
                    "chaos: injected shared-memory attach failure for "
                    f"{publication.token!r}"
                )
            for buffer_name, segment_name in publication.segments:
                segment = shared_memory.SharedMemory(name=segment_name)
                self._shms.append(segment)
                self.views[buffer_name] = segment.buf
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        self.views = {}
        for segment in self._shms:
            try:
                segment.close()
            except BufferError:
                # numpy views still reference the mapping.  Abandon
                # it — the pages live until process exit anyway — and
                # neuter the handle so ``__del__`` does not retry the
                # close at interpreter shutdown and spray "Exception
                # ignored" tracebacks on stderr.
                segment._buf = None
                segment._mmap = None
        self._shms = []


def publish_from_worker(
    prefix: str, token: str, manifest, buffers
) -> Publication:
    """Create segments for a worker-built artifact (to be adopted).

    The create registers the names with the shared resource tracker
    (see module docstring); the balancing unregister is whoever
    eventually unlinks — the plane after :meth:`adopt`, or the worker
    itself via :func:`unlink_publication` when adoption fails.
    """
    names: list[tuple[str, str]] = []
    total = 0
    # Only [A-Za-z0-9_] reaches the segment name: the resource
    # tracker's wire format is colon-delimited, so a ':' from the
    # token would corrupt every register line for the segment.
    tag = "".join(c for c in token if c.isalnum() or c == "_")[-16:]
    for position, (buffer_name, array) in enumerate(buffers.items()):
        data = _raw(array)
        segment = shared_memory.SharedMemory(
            create=True,
            name=f"{prefix}_w{os.getpid()}_{tag}_{position}",
            size=max(data.nbytes, 1),
        )
        segment.buf[: data.nbytes] = data
        names.append((buffer_name, segment.name))
        total += data.nbytes
        segment.close()
    return Publication(
        token=token, manifest=manifest, segments=tuple(names),
        nbytes=total,
    )


def unlink_publication(publication: Publication) -> None:
    """Best-effort unlink of a publication's segments (the not-adopted
    error path of :func:`publish_from_worker`)."""
    for _buffer_name, segment_name in publication.segments:
        try:
            # Attach registers, unlink unregisters: balanced, no
            # explicit _untrack (the tracker cache is a set — a
            # second remove raises in the tracker process).
            segment = shared_memory.SharedMemory(name=segment_name)
            segment.close()
            segment.unlink()
        except FileNotFoundError:
            pass


__all__ = [
    "AttachedSegments",
    "PlaneCounters",
    "Publication",
    "SharedArtifactPlane",
    "plane_prefix",
    "publish_from_worker",
    "stable_token",
    "unlink_publication",
]
