"""The serving core and its threaded HTTP transport.

One server = one database, served by ``--workers`` per-worker
:class:`~repro.Connection` objects over a shared
:class:`~repro.session.ArtifactStore`.  The HTTP layer is deliberately
thin — stdlib :mod:`http.server` with threads, no framework — because
the protocol work (parsing, validation, execution) already lives in
:mod:`repro.session.protocol` and is transport-independent.

The serving state itself is transport-independent too:
:class:`ServingCore` owns the store, the worker backend (in-process
connections, worker processes, range shards, or remote shard
replicas), depth-aware dispatch, and the health/stats views.  Two
fronts wrap one core — :class:`ReproServer` (threads, this module) and
:class:`~repro.server.aio.AsyncReproServer` (``repro serve --async``,
an asyncio event loop) — and answer byte-identical wire shapes.

Routes (full spec in ``docs/protocol.md``):

* ``POST /v1/session`` — body is one
  :class:`~repro.session.SessionRequest` JSON object; the reply is one
  :class:`~repro.session.SessionResponse`.  Requests the library
  rejects (bad index, unknown variable, ...) come back as HTTP 200
  with ``ok=false`` — the protocol's own error channel; *malformed*
  bodies (invalid JSON, unknown fields, newer protocol version) are
  HTTP 400 with the same structured shape, never a traceback.  When
  every worker queue is full, admission fails fast: HTTP 503 with a
  ``Retry-After`` header and ``error_type`` ``OverloadedError``.
* ``GET /healthz`` — liveness: package + protocol versions, engine,
  worker count, front and mode.
* ``GET /stats`` — the shared store's build/cache counters, the
  transport's own op counters, dispatch-queue depths, and the worker
  sessions' counters *aggregated into totals* (one dict however many
  workers run; ``stats_per_worker=True`` / ``--stats-per-worker`` adds
  a per-worker breakdown, capped at :data:`MAX_STATS_WORKERS`).

Concurrency: :class:`http.server.ThreadingHTTPServer` spawns a thread
per connection; each request is then admitted onto a *bounded*
per-worker queue (:class:`~repro.server.pool.LocalDispatcher`), so
``--workers`` caps concurrent query work and ``--queue-depth`` caps
how much work may wait, regardless of open sockets.  Sockets carry a
read/write timeout (``request_timeout``), so a stalled client cannot
pin a serving thread forever.  Artifact builds synchronize per
artifact in the store — two clients asking for different
decompositions preprocess concurrently; two asking for the same one
build it once.

Start one from Python (or ``repro serve`` from a shell)::

    import repro
    from repro.server import ReproServer

    with ReproServer({"R": {(1, 2)}}, workers=4) as server:
        conn = repro.connect(server.url)       # HTTP facade client
        view = conn.prepare("Q(x, y) :- R(x, y)", order=["x", "y"])
        assert view[0] == (1, 2)
"""

from __future__ import annotations

import json
import threading
from collections import Counter
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.data.database import Database
from repro.errors import OverloadedError, ProtocolError, ReproError
from repro.facade import Connection
from repro.query.parser import parse_query
from repro.server.pool import DEFAULT_QUEUE_DEPTH, LocalDispatcher
from repro.session.artifacts import ArtifactStore
from repro.session.protocol import (
    MUTATION_OPS,
    PROTOCOL_VERSION,
    SessionRequest,
    SessionResponse,
    execute,
)
from repro.session.session import AccessSession

#: Route of the one serving endpoint (POST).
SESSION_ROUTE = "/v1/session"

#: Hard cap on request bodies; a session request is a few hundred bytes,
#: so anything near this is a client bug, answered with HTTP 413.
MAX_BODY_BYTES = 1 << 20

#: Cap on the per-worker breakdown in ``GET /stats``: the response must
#: stay O(1)-ish however large ``--workers`` is, so the opt-in
#: breakdown lists at most this many workers (a ``truncated`` count
#: reports the rest).
MAX_STATS_WORKERS = 64

#: Socket read/write timeout of the threaded front, seconds.  A client
#: that stalls mid-body (or never drains its response) trips the
#: timeout and loses the connection instead of pinning a thread.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: The ``Retry-After`` value sent with every 503: overload is bursty
#: by construction (bounded queues), so clients should retry shortly.
RETRY_AFTER_SECONDS = 1


def aggregate_counters(dicts) -> dict:
    """Sum a list of (possibly nested) counter dicts key-by-key.

    The worker sessions all share one stats shape
    (:meth:`~repro.session.cache.SessionStats.as_dict`), so ``GET
    /stats`` can report one totals dict instead of one dict per worker
    — the response no longer grows with ``--workers``:

        >>> aggregate_counters([{"a": 1, "b": {"c": 2}},
        ...                     {"a": 3, "b": {"c": 4}}])
        {'a': 4, 'b': {'c': 6}}
    """
    totals: dict = {}
    for counters in dicts:
        for key, value in counters.items():
            if isinstance(value, dict):
                merged = totals.setdefault(key, {})
                for inner_key, inner_value in value.items():
                    merged[inner_key] = (
                        merged.get(inner_key, 0) + inner_value
                    )
            else:
                totals[key] = totals.get(key, 0) + value
    return totals


def error_body(
    message: str, op: str = "?", error_type: str | None = None
) -> bytes:
    """The structured JSON body for a transport-level error.

    Same shape as a protocol-level failure — an ``ok=false``
    :class:`~repro.session.SessionResponse` — so clients parse exactly
    one error format at every layer.  ``error_type`` names the
    :mod:`repro.errors` class the client should re-raise (e.g.
    ``OverloadedError`` on a 503):

        >>> import json
        >>> body = json.loads(error_body("bad JSON request").decode())
        >>> body["ok"], body["error"]
        (False, 'bad JSON request')
    """
    return (
        SessionResponse(
            op=op, ok=False, error=message, error_type=error_type
        )
        .to_json()
        .encode("utf-8")
    )


class _ServerCounters:
    """Transport-level op/error counters (the store counts cache work;
    this counts wire traffic), locked because handler threads race."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.ops: Counter[str] = Counter()
        self.http_errors: Counter[int] = Counter()

    def count_request(self, op: str) -> None:
        with self._lock:
            self.requests += 1
            self.ops[op] += 1

    def count_error(self, status: int) -> None:
        with self._lock:
            self.http_errors[status] += 1

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "ops": dict(self.ops),
                "http_errors": {
                    str(status): count
                    for status, count in self.http_errors.items()
                },
            }


class ServingCore:
    """Transport-independent serving state behind every HTTP front.

    Owns the shared :class:`~repro.session.ArtifactStore`, the worker
    backend (threads / procs / shards / remote shard replicas),
    depth-aware bounded dispatch, and the health/stats views.  The
    threaded :class:`ReproServer` and the asyncio
    :class:`~repro.server.aio.AsyncReproServer` each wrap one core and
    add only connection handling — which is why ``--async`` changes
    nothing on the wire.

    Args:
        database: the served :class:`~repro.data.database.Database`
            (or a plain mapping of relation names to tuple iterables).
        engine: execution engine for the shared store (name, instance,
            or ``None`` for the active engine's kind).
        workers: size of the in-process ``Connection`` pool (ignored
            when ``procs``/``shards``/``shard_backends`` is given).
        capacity: per-kind artifact-cache capacity of the shared store.
        cache_slack: cache-aware planning slack of worker sessions.
        default_query: a query (text or parsed) backing requests that
            carry none; ``None`` means every request must name its
            query.
        stats_per_worker: include a bounded per-worker breakdown in
            ``stats()``.
        procs / shards / read_only / shard_relation / shard_variable /
            start_method: as on :class:`ReproServer`.
        queue_depth: bound on each worker's pending-request queue
            (``None`` → :data:`~repro.server.pool.DEFAULT_QUEUE_DEPTH`);
            a fleet with every queue full rejects admission with
            :class:`~repro.errors.OverloadedError` (HTTP 503).
        shard_backends: base URLs of remote ``repro serve`` replicas,
            one per range shard — reads fan out over HTTP and merge by
            prefix counts (read-only; needs ``default_query``).
            Exclusive with ``procs`` and ``shards``.
        wal: path of a :class:`~repro.data.wal.WriteAheadLog` — the
            log is replayed over ``database`` at boot (crash
            recovery), then every applied delta is appended *before*
            it touches the store, so a crash mid-apply replays to the
            exact pre-crash version.  Exclusive with
            ``shards``/``shard_backends`` (sharded serving is
            read-only).
        retain_versions: MVCC snapshot window of the shared store
            (``None`` → :data:`repro.session.mvcc.DEFAULT_RETAIN`).
        strict_views: restore the fail-on-any-mutation staleness
            contract for pinned reads.
    """

    def __init__(
        self,
        database,
        engine=None,
        workers: int = 4,
        capacity: int | None = 64,
        cache_slack=0,
        default_query=None,
        stats_per_worker: bool = False,
        procs: int | None = None,
        shards: int | None = None,
        read_only: bool = False,
        shard_relation: str | None = None,
        shard_variable: str | None = None,
        start_method: str = "spawn",
        queue_depth: int | None = None,
        shard_backends: list[str] | None = None,
        wal: str | None = None,
        retain_versions: int | None = None,
        strict_views: bool = False,
        chaos: str | None = None,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
        if procs is not None and shards is not None:
            raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
                "procs and shards are exclusive: sharded serving "
                "already runs one process per shard"
            )
        if shard_backends is not None and (
            procs is not None or shards is not None
        ):
            raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
                "shard_backends is exclusive with procs/shards: the "
                "shards already live on the remote replicas"
            )
        self.queue_depth = (
            DEFAULT_QUEUE_DEPTH if queue_depth is None else queue_depth
        )
        if self.queue_depth < 1:
            raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
                f"need a queue depth of at least one, got "
                f"{self.queue_depth}"
            )
        if wal is not None and (
            shards is not None or shard_backends is not None
        ):
            raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
                "wal is exclusive with shards/shard_backends: sharded "
                "serving is read-only, there are no deltas to log"
            )
        self.stats_per_worker = stats_per_worker
        # Arm fault injection for this process and remember the spec so
        # worker *processes* inherit it through their WorkerSpec (the
        # REPRO_CHAOS environment variable covers them too, but a
        # config field survives env-scrubbing process managers).
        self.chaos = chaos
        if chaos is not None:
            from repro.chaos import faults

            faults.arm(chaos)
        if not isinstance(database, Database):
            database = Database(database)
        self.wal = None
        db_version = 0
        if wal is not None:
            # Recovery before anything is built: replay the log over
            # the boot database (seeding a fresh log with a version-0
            # snapshot so it is self-contained), so the store — and
            # every worker attaching to it — starts at the exact
            # pre-crash version.
            from repro.data.wal import WriteAheadLog

            self.wal = WriteAheadLog(wal)
            database, db_version = self.wal.recover(
                database, seed=True
            )
        if procs is not None or shards is not None:
            # The artifact plane ships flat buffers of the *shared*
            # encoding; realize it up front so publication is
            # zero-conversion (a plain Database would fall back to
            # pickling whole databases into every worker).
            from repro.data.database import EncodedDatabase

            if not isinstance(database, EncodedDatabase):
                database = EncodedDatabase(database.relations)
        if isinstance(default_query, str):
            default_query = parse_query(default_query)
        if default_query is not None:
            # Fail at startup, not once per request.
            database.validate_for(default_query)
        if engine is None:
            from repro.engine.registry import get_engine

            engine = get_engine().name
        self.store = ArtifactStore(
            database,
            engine=engine,
            capacity=capacity,
            db_version=db_version,
            retain_versions=retain_versions,
            strict_views=strict_views,
            wal=self.wal,
        )
        self.default_query = default_query
        self.read_only = bool(read_only) or shards is not None or (
            shard_backends is not None
        )
        query_text = (
            str(default_query) if default_query is not None else None
        )
        self._backend = None
        self._connections: list[Connection] = []
        self._dispatcher: LocalDispatcher | None = None
        if shard_backends is not None:
            from repro.server.router import RemoteShardBackend

            self._backend = RemoteShardBackend(
                database,
                shard_backends,
                engine_name=self.store.engine.name,
                default_query=default_query,
                shard_relation=shard_relation,
                shard_variable=shard_variable,
            )
            self.workers = self._backend.plan.shards
        elif shards is not None:
            from repro.server.router import ShardBackend

            self._backend = ShardBackend(
                database,
                shards,
                engine_name=self.store.engine.name,
                capacity=capacity,
                cache_slack=cache_slack,
                default_query=default_query,
                shard_relation=shard_relation,
                shard_variable=shard_variable,
                start_method=start_method,
                queue_depth=self.queue_depth,
                chaos=chaos,
            )
            self.workers = self._backend.plan.shards
        elif procs is not None:
            from repro.server.router import ProcessBackend

            self._backend = ProcessBackend(
                self.store,
                procs,
                engine_name=self.store.engine.name,
                capacity=capacity,
                cache_slack=cache_slack,
                default_query_text=query_text,
                start_method=start_method,
                queue_depth=self.queue_depth,
                read_only=self.read_only,
                chaos=chaos,
            )
            self.workers = procs
        else:
            self.workers = workers
            self._connections = [
                Connection(
                    AccessSession(
                        store=self.store, cache_slack=cache_slack
                    )
                )
                for _ in range(workers)
            ]
            self._dispatcher = LocalDispatcher(
                self._connections, max_queue_depth=self.queue_depth
            )

    @property
    def dispatch_capacity(self) -> int:
        """How many requests may be admitted at once fleet-wide (the
        async front sizes its executor to this bound)."""
        return self.workers * self.queue_depth

    @property
    def mode(self) -> str:
        return (
            self._backend.mode
            if self._backend is not None
            else "threads"
        )

    # -- serving -----------------------------------------------------------

    def execute(self, request: SessionRequest) -> SessionResponse:
        """Serve one protocol request (pooled connection, worker
        process, or sharded fan-out — same wire shapes in all modes).

        Raises :class:`~repro.errors.OverloadedError` when bounded
        admission refuses the request; the transport answers 503 with
        ``Retry-After`` instead of queueing unboundedly.
        """
        if self.read_only and request.op in MUTATION_OPS:
            from repro.errors import ReadOnlyError

            return SessionResponse(
                op=request.op,
                ok=False,
                error=(
                    "server is read-only: mutations are disabled"
                    if self._backend is None
                    or not self._backend.mode.startswith("sharded")
                    else "sharded serving is read-only: a delta could "
                    "move tuples across shard boundaries"
                ),
                error_type=ReadOnlyError.__name__,
            )
        if self._backend is not None:
            return self._backend.execute(request)
        # In-process workers share one store (and its caches), so
        # election needs no affinity: the shallowest queue wins.
        index = self._dispatcher.admit()
        try:
            connection = self._dispatcher.acquire(index)
            try:
                return execute(
                    connection,
                    request,
                    default_query=self.default_query,
                )
            except ReproError as error:
                # execute() already converts library errors; anything
                # that still escapes must not kill the worker slot.
                return SessionResponse(
                    op=request.op, ok=False, error=str(error)
                )
        finally:
            self._dispatcher.release(index)

    def close(self, timeout: float = 10.0) -> bool:
        """Close the backend (and sync/close the WAL); ``True`` when
        the worker drain was clean (in-process serving always drains
        clean)."""
        clean = True
        if self._backend is not None:
            clean = self._backend.close(timeout=timeout)
        if self.wal is not None:
            self.wal.close()
        if self.chaos is not None:
            from repro.chaos import faults

            faults.disarm()
        return clean

    # -- observability -----------------------------------------------------

    def health(self, front: str) -> dict:
        from repro import __version__

        return {
            "ok": True,
            "service": "repro",
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "engine": self.store.engine.name,
            "workers": self.workers,
            "front": front,
            "mode": self.mode,
            "read_only": self.read_only,
            "db_version": self.store.db_version,
            "durable": self.wal is not None,
            "default_query": (
                str(self.default_query)
                if self.default_query is not None
                else None
            ),
        }

    def stats(self, server_counters: dict) -> dict:
        """Store build/cache counters + worker totals + wire ops.

        Worker session counters are aggregated into one ``totals``
        dict so the response size is independent of ``--workers``; a
        per-worker breakdown (bounded) appears only with
        ``stats_per_worker=True``.  ``dispatch`` carries the bounded
        admission view in threaded/async in-process mode (queue depths
        and rejections); process modes report the same through
        ``backend.pool``.
        """
        if self._backend is not None:
            backend_stats = self._backend.stats()
            worker_stats = [
                stats.get("session", {})
                for stats in backend_stats.pop("per_worker")
            ]
        else:
            backend_stats = None
            worker_stats = [
                connection.session.stats.as_dict()
                for connection in self._connections
            ]
        workers: dict = {
            "count": len(worker_stats),
            "totals": aggregate_counters(worker_stats),
        }
        if self.stats_per_worker:
            workers["per_worker"] = worker_stats[:MAX_STATS_WORKERS]
            truncated = len(worker_stats) - MAX_STATS_WORKERS
            if truncated > 0:
                workers["truncated"] = truncated
        store_stats = self.store.cache_stats()
        out = {
            "server": server_counters,
            "store": store_stats,
            "workers": workers,
            # The at-a-glance durability view (satellite of the WAL
            # work): current version, how many MVCC snapshots pinned
            # views can still read, and the WAL high-water mark
            # (``None`` = serving without a log).
            "durability": {
                "db_version": self.store.db_version,
                "snapshots_retained": store_stats.get("mvcc", {}).get(
                    "retained", 0
                ),
                "wal_seq": (
                    self.wal.last_seq if self.wal is not None else None
                ),
            },
        }
        if self._dispatcher is not None:
            out["dispatch"] = self._dispatcher.counters()
        if backend_stats is not None:
            out["backend"] = backend_stats
        return out


class _Handler(BaseHTTPRequestHandler):
    """One request; the interesting state lives on ``self.server``."""

    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def repro(self) -> "ReproServer":
        return self.server.repro_server  # type: ignore[attr-defined]

    def setup(self) -> None:
        # The socket timeout must be set before StreamRequestHandler
        # wraps it in rfile/wfile: a client stalling mid-body (or
        # never draining its response) then trips TimeoutError, which
        # handle_one_request turns into close_connection — freeing the
        # serving thread instead of pinning it forever.
        self.timeout = self.repro.request_timeout
        super().setup()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.repro.verbose:
            super().log_message(format, *args)

    def _reply(
        self, status: int, body: bytes, headers: dict | None = None
    ) -> None:
        if status >= 400:
            self.repro.counters.count_error(status)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, payload: dict) -> None:
        self._reply(
            status, json.dumps(payload, default=str).encode("utf-8")
        )

    # -- GET: observability ------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/healthz":
            self._reply_json(200, self.repro.health())
        elif self.path == "/stats":
            self._reply_json(200, self.repro.stats())
        elif self.path.rstrip("/") == SESSION_ROUTE.rstrip("/"):
            self._reply(
                405,
                error_body(f"use POST for {SESSION_ROUTE}"),
            )
        else:
            self._reply(
                404,
                error_body(
                    f"unknown path {self.path!r}; serving "
                    f"POST {SESSION_ROUTE}, GET /healthz, GET /stats"
                ),
            )

    # -- POST: the protocol ------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path.rstrip("/") != SESSION_ROUTE.rstrip("/"):
            self._reply(
                404,
                error_body(
                    f"unknown path {self.path!r}; "
                    f"POST requests go to {SESSION_ROUTE}"
                ),
            )
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
            if length < 0:
                raise ValueError(length)  # repro: noqa[EXC-TAXONOMY] -- local control flow, caught two lines down
        except ValueError:
            # Without a sane length the body framing is unknown (e.g.
            # chunked encoding), so the connection cannot be reused —
            # close it rather than parse body bytes as the next
            # request.  A negative length must not reach rfile.read(),
            # which would block until client EOF.
            self.close_connection = True
            self._reply(
                411, error_body("request needs a Content-Length")
            )
            return
        if length > MAX_BODY_BYTES:
            # Drain (bounded) so the client can finish writing and
            # read the error instead of dying on a broken pipe; truly
            # absurd lengths just get the connection closed.
            remaining = min(length, 16 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 1 << 16))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            self._reply(
                413,
                error_body(
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                ),
            )
            return
        raw = self.rfile.read(length)
        # Malformed bodies are client errors: a structured 400, never a
        # 500/traceback (the request may be hostile or just confused).
        try:
            request = SessionRequest.from_json(raw.decode("utf-8"))
        except UnicodeDecodeError:
            self._reply(400, error_body("request body is not UTF-8"))
            return
        except ProtocolError as error:
            self._reply(400, error_body(str(error)))
            return
        self.repro.counters.count_request(request.op)
        try:
            response = self.repro.execute(request)
        except OverloadedError as error:
            # Bounded admission refused the request: it was never
            # started, so retrying after a short backoff is safe.
            self._reply(
                503,
                error_body(
                    str(error),
                    request.op,
                    OverloadedError.__name__,
                ),
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
            return
        body = response.to_json().encode("utf-8")
        if not response.ok and response.error_type == "ReadOnlyError":
            # Mutations on a --read-only server are a *policy* refusal,
            # not a protocol failure: HTTP 403 with the same structured
            # body, so clients re-raise ReadOnlyError like any library
            # error.
            self._reply(403, body)
        else:
            self._reply(200, body)


class ReproServer:
    """A threaded HTTP server for one database.

    Args:
        database: the served :class:`~repro.data.database.Database` (or
            a plain mapping of relation names to tuple iterables).
        engine: execution engine for the shared store (name, instance,
            or ``None`` for a fresh instance of the active engine's
            kind — worker-shared, like :func:`repro.connect`).
        workers: size of the per-worker ``Connection`` pool: the number
            of requests doing query work concurrently.
        capacity: per-kind artifact-cache capacity of the shared store.
        cache_slack: cache-aware planning slack of every worker session.
        default_query: a query (text or parsed) backing requests that
            carry none — the HTTP twin of ``repro session``'s bound
            query.  ``None`` means every request must name its query.
        host / port: bind address; ``port=0`` picks an ephemeral port
            (see :attr:`url`).
        stats_per_worker: include a per-worker breakdown (capped at
            :data:`MAX_STATS_WORKERS` entries) in ``GET /stats`` next
            to the aggregated totals.
        verbose: log one line per request to stderr.
        procs: serve with ``procs`` worker *processes* instead of the
            in-process connection pool — the database is published
            once into shared memory and every worker attaches
            zero-copy (:mod:`repro.server.router`); ``workers`` is
            ignored.  Wire protocol unchanged.
        shards: serve with one process per *range shard* of the
            partitioned relation; implies ``read_only``, requires
            ``default_query``, and every request's order must lead
            with the shard variable.  Exclusive with ``procs``.
        read_only: refuse ``insert``/``delete`` with a structured
            HTTP 403 (:class:`~repro.errors.ReadOnlyError`).
        shard_relation / shard_variable: pin the shard plan's
            partitioned relation / leading variable (default: the
            advisor's preferred order decides the variable, the
            largest candidate relation is partitioned).
        start_method: multiprocessing start method for worker
            processes (tests override; keep ``spawn`` in production).
        queue_depth: bound on each worker's pending-request queue;
            full fleet → HTTP 503 + ``Retry-After``
            (:class:`~repro.errors.OverloadedError`).
        shard_backends: base URLs of remote ``repro serve`` replicas,
            one per range shard (read-only; needs ``default_query``).
        wal: write-ahead-log path — replayed at boot, appended before
            every apply (see :class:`ServingCore`).
        retain_versions / strict_views: MVCC snapshot window / strict
            staleness of the shared store (see :class:`ServingCore`).
        request_timeout: socket read/write timeout per connection,
            seconds — stalled clients lose the connection instead of
            pinning a serving thread.

    Usable as a context manager: ``with ReproServer(db) as server:``
    starts a background serving thread and shuts it down on exit.  Call
    :meth:`serve_forever` instead to serve in the foreground (the CLI).
    """

    def __init__(
        self,
        database,
        engine=None,
        workers: int = 4,
        capacity: int | None = 64,
        cache_slack=0,
        default_query=None,
        host: str = "127.0.0.1",
        port: int = 0,
        stats_per_worker: bool = False,
        verbose: bool = False,
        procs: int | None = None,
        shards: int | None = None,
        read_only: bool = False,
        shard_relation: str | None = None,
        shard_variable: str | None = None,
        start_method: str = "spawn",
        queue_depth: int | None = None,
        shard_backends: list[str] | None = None,
        wal: str | None = None,
        retain_versions: int | None = None,
        strict_views: bool = False,
        chaos: str | None = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        self.core = ServingCore(
            database,
            engine=engine,
            workers=workers,
            capacity=capacity,
            cache_slack=cache_slack,
            default_query=default_query,
            stats_per_worker=stats_per_worker,
            procs=procs,
            shards=shards,
            read_only=read_only,
            shard_relation=shard_relation,
            shard_variable=shard_variable,
            start_method=start_method,
            queue_depth=queue_depth,
            shard_backends=shard_backends,
            wal=wal,
            retain_versions=retain_versions,
            strict_views=strict_views,
            chaos=chaos,
        )
        self.verbose = verbose
        self.counters = _ServerCounters()
        self.request_timeout = request_timeout
        self.clean_shutdown: bool | None = None
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.repro_server = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- the wrapped core --------------------------------------------------

    @property
    def store(self):
        return self.core.store

    @property
    def workers(self) -> int:
        return self.core.workers

    @property
    def default_query(self):
        return self.core.default_query

    @property
    def read_only(self) -> bool:
        return self.core.read_only

    @property
    def stats_per_worker(self) -> bool:
        return self.core.stats_per_worker

    @property
    def _backend(self):
        return self.core._backend

    # -- addresses ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients connect to (``repro.connect(server.url)``)."""
        return f"http://{self.host}:{self.port}"

    # -- serving -----------------------------------------------------------

    def execute(self, request: SessionRequest) -> SessionResponse:
        """Serve one protocol request through the core (may raise
        :class:`~repro.errors.OverloadedError` — the handler answers
        503)."""
        return self.core.execute(request)

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or KeyboardInterrupt)."""
        self._httpd.serve_forever()

    def start(self) -> "ReproServer":
        """Serve on a daemon background thread (tests, benchmarks)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def request_shutdown(self) -> None:
        """Begin shutdown without blocking (signal-handler-safe).

        ``httpd.shutdown()`` blocks until ``serve_forever`` exits, so a
        SIGTERM handler running on the serving thread's process must
        hand it off; the caller then runs :meth:`shutdown` to finish.
        """
        threading.Thread(
            target=self._httpd.shutdown, daemon=True
        ).start()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop accepting, drain workers, unlink shared memory.

        Sets :attr:`clean_shutdown`: ``True`` when every worker
        finished its in-flight request and exited on drain (always
        ``True`` in threaded mode), ``False`` when one had to be
        terminated — the CLI exits nonzero on an unclean drain.
        Idempotent.
        """
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        clean = self.core.close(timeout=timeout)
        if self.clean_shutdown is None:
            self.clean_shutdown = clean

    def close(self, timeout: float = 10.0) -> None:
        """Alias for :meth:`shutdown` (symmetry with the pool/plane)."""
        self.shutdown(timeout=timeout)

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- observability -----------------------------------------------------

    def health(self) -> dict:
        return self.core.health(front="threads")

    def stats(self) -> dict:
        """Store build/cache counters + worker totals + wire ops (see
        :meth:`ServingCore.stats`)."""
        return self.core.stats(self.counters.as_dict())

    def __repr__(self) -> str:
        return (
            f"ReproServer({self.url}, engine="
            f"{self.store.engine.name!r}, workers={self.workers})"
        )


def serve(
    database,
    *,
    engine=None,
    workers: int = 4,
    capacity: int | None = 64,
    cache_slack=0,
    default_query=None,
    host: str = "127.0.0.1",
    port: int = 8080,
    stats_per_worker: bool = False,
    verbose: bool = False,
    procs: int | None = None,
    shards: int | None = None,
    read_only: bool = False,
    shard_relation: str | None = None,
    shard_variable: str | None = None,
    queue_depth: int | None = None,
    shard_backends: list[str] | None = None,
    wal: str | None = None,
    retain_versions: int | None = None,
    strict_views: bool = False,
    chaos: str | None = None,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
) -> ReproServer:
    """Build a :class:`ReproServer` and serve in the foreground.

    The programmatic twin of ``repro serve``; returns the (stopped)
    server after :meth:`~ReproServer.shutdown` or Ctrl-C.
    """
    server = ReproServer(
        database,
        engine=engine,
        workers=workers,
        capacity=capacity,
        cache_slack=cache_slack,
        default_query=default_query,
        host=host,
        port=port,
        stats_per_worker=stats_per_worker,
        verbose=verbose,
        procs=procs,
        shards=shards,
        read_only=read_only,
        shard_relation=shard_relation,
        shard_variable=shard_variable,
        queue_depth=queue_depth,
        shard_backends=shard_backends,
        wal=wal,
        retain_versions=retain_versions,
        strict_views=strict_views,
        chaos=chaos,
        request_timeout=request_timeout,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return server


__all__ = [
    "DEFAULT_REQUEST_TIMEOUT",
    "MAX_BODY_BYTES",
    "MAX_STATS_WORKERS",
    "RETRY_AFTER_SECONDS",
    "ReproServer",
    "SESSION_ROUTE",
    "ServingCore",
    "aggregate_counters",
    "error_body",
    "serve",
]
