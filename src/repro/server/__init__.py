"""HTTP serving for the session protocol: ``repro serve``.

The paper's workload is *many* direct-access requests against one
preprocessed join query — a serving workload.  This package is the
transport that matches it: a stdlib-only threaded HTTP server
(:class:`ReproServer`, :mod:`repro.server.http`) exposing the versioned
JSON session protocol at ``POST /v1/session`` plus ``GET /healthz`` and
``GET /stats``, and an HTTP client (:class:`HTTPConnection`,
:mod:`repro.server.client`) that gives remote callers the same
``connect → prepare → view`` facade as a local process —
``repro.connect("http://host:port")`` just works.

Workers are real: each serving thread checks a per-worker
:class:`~repro.Connection` out of a pool, and all workers share one
:class:`~repro.session.ArtifactStore`, so the database is encoded once
and two workers can preprocess *different* decompositions concurrently
while racing workers build the *same* artifact exactly once.

Process-parallel serving (``procs=N`` / ``shards=N``) swaps the
in-process pool for real worker *processes* supervised by a
:class:`~repro.server.pool.WorkerPool`: the encoded database (and
numpy-engine counting forests) live once in named shared-memory
segments (:class:`~repro.server.shm.SharedArtifactPlane`,
:mod:`repro.data.flatbuf`) and every worker attaches zero-copy.
Sharded mode additionally range-partitions one relation and merges
per-shard answers by prefix counts
(:mod:`repro.session.sharding`) — bit-identical to unsharded serving,
whether the shards are local worker processes or remote ``repro
serve`` replicas reached through :class:`HTTPShardExecutor`
(``shard_backends=[url, ...]``).  The wire protocol is the same in
every mode.

Both fronts wrap one transport-independent :class:`ServingCore`:
the threaded :class:`ReproServer` and the asyncio
:class:`AsyncReproServer` (``repro serve --async``,
:mod:`repro.server.aio`), which multiplexes all connections onto one
event loop and dispatches onto *bounded* per-worker queues — full
fleet → structured HTTP 503 + ``Retry-After``
(:class:`~repro.errors.OverloadedError`).

See ``docs/architecture.md`` for the layer map and
``docs/protocol.md`` for the wire format.
"""

from repro.server.aio import AsyncReproServer
from repro.server.client import (
    HTTPConnection,
    HTTPShardExecutor,
    RemoteAnswerView,
)
from repro.server.http import ReproServer, ServingCore, serve
from repro.server.pool import LocalDispatcher, WorkerPool
from repro.server.shm import Publication, SharedArtifactPlane
from repro.server.worker import WorkerSpec

__all__ = [
    "AsyncReproServer",
    "HTTPConnection",
    "HTTPShardExecutor",
    "LocalDispatcher",
    "Publication",
    "RemoteAnswerView",
    "ReproServer",
    "ServingCore",
    "SharedArtifactPlane",
    "WorkerPool",
    "WorkerSpec",
    "serve",
]
