"""HTTP serving for the session protocol: ``repro serve``.

The paper's workload is *many* direct-access requests against one
preprocessed join query — a serving workload.  This package is the
transport that matches it: a stdlib-only threaded HTTP server
(:class:`ReproServer`, :mod:`repro.server.http`) exposing the versioned
JSON session protocol at ``POST /v1/session`` plus ``GET /healthz`` and
``GET /stats``, and an HTTP client (:class:`HTTPConnection`,
:mod:`repro.server.client`) that gives remote callers the same
``connect → prepare → view`` facade as a local process —
``repro.connect("http://host:port")`` just works.

Workers are real: each serving thread checks a per-worker
:class:`~repro.Connection` out of a pool, and all workers share one
:class:`~repro.session.ArtifactStore`, so the database is encoded once
and two workers can preprocess *different* decompositions concurrently
while racing workers build the *same* artifact exactly once.

See ``docs/architecture.md`` for the layer map and
``docs/protocol.md`` for the wire format.
"""

from repro.server.client import HTTPConnection, RemoteAnswerView
from repro.server.http import ReproServer, serve

__all__ = [
    "HTTPConnection",
    "RemoteAnswerView",
    "ReproServer",
    "serve",
]
