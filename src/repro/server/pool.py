"""The worker-pool supervisor: spawn, health-check, drain, respawn.

:class:`WorkerPool` owns N worker *processes* (spawn start method —
fork would duplicate the threaded HTTP server's locks mid-state) and
replaces the in-process ``Connection`` pool behind
:class:`~repro.server.http.ReproServer` when process parallelism is
requested.  Responsibilities:

* **spawn** — boot each worker from a picklable
  :class:`~repro.server.worker.WorkerSpec` (built by a caller-supplied
  factory, so respawns always attach the *latest* database
  publication) and wait for its ``ready`` handshake;
* **dispatch** — one interaction per worker at a time, over
  *bounded per-worker pending queues* with depth-aware election
  (:func:`elect_slot`): requests carrying the same ``(query, order)``
  hash to the same worker, so its private artifact cache stays hot,
  but a read against a read-only store spills to the shallowest queue
  instead of stacking behind its affinity worker
  (``affinity_hits`` / ``affinity_spills`` count how that played out);
  when every queue is at ``max_queue_depth`` the request is rejected
  with :class:`~repro.errors.OverloadedError` — the transport answers
  HTTP 503 — rather than piling up unboundedly;
* **plane traffic** — while a worker handles a request it may ask for
  or publish shared-memory artifacts; the pool answers on the
  supervisor side, where the refcounts live;
* **crash detection + respawn** — a worker that dies mid-request
  surfaces as :class:`~repro.errors.WorkerCrashError` on that one
  request, is replaced by a fresh process re-attached to the plane,
  and its plane references are released;
* **drain** — :meth:`close` waits for in-flight requests, asks every
  worker to exit, and reports whether the drain was clean (no worker
  had to be killed).

The pool is deliberately engine-agnostic and transport-agnostic: it
moves JSON strings and pickled deltas, nothing else.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

from repro.chaos.faults import fire as _chaos_fire
from repro.errors import OverloadedError, WorkerCrashError
from repro.server.shm import SharedArtifactPlane

#: How long a spawned worker gets to attach + build before the pool
#: declares the boot failed.  Generous: a cold numpy import on a busy
#: box can take seconds.
BOOT_TIMEOUT = 60.0

#: Default seconds between background health sweeps.
HEALTH_INTERVAL = 2.0

#: Default bound on each worker's pending-request queue.  When every
#: queue is at the bound, admission fails with
#: :class:`~repro.errors.OverloadedError` (HTTP 503 on the wire) —
#: overload surfaces as immediate, retryable rejection instead of
#: unbounded queueing.
DEFAULT_QUEUE_DEPTH = 16


def elect_slot(
    depths: list[int],
    capacity: int,
    affinity: int | None = None,
    spill: bool = False,
) -> tuple[int, str]:
    """Depth-aware worker election over pending-queue ``depths``.

    Returns ``(index, outcome)`` where ``outcome`` is ``"plain"`` (no
    affinity given), ``"hit"`` (the affinity worker was elected), or
    ``"spill"`` (a shallower sibling was).  Raises
    :class:`~repro.errors.OverloadedError` when every queue is at
    ``capacity`` — admission is bounded.

    Policy: without affinity the shallowest queue wins.  With
    affinity, the preferred worker (``affinity % len(depths)``) wins
    while its queue has room — except under ``spill=True`` (the store
    is read-only, so every worker's cache can serve every read), where
    it must also be tied for shallowest.  A *full* preferred queue
    always spills to the shallowest sibling rather than rejecting
    while the fleet has room.
    """
    shallowest = min(range(len(depths)), key=depths.__getitem__)
    if depths[shallowest] >= capacity:
        raise OverloadedError(
            f"all {len(depths)} worker queues are full "
            f"({capacity} pending each); retry shortly"
        )
    if affinity is None:
        return shallowest, "plain"
    preferred = affinity % len(depths)
    if depths[preferred] < capacity and (
        not spill or depths[preferred] <= depths[shallowest]
    ):
        return preferred, "hit"
    return shallowest, "spill"


class _PoolWorker:
    """One supervised process and its control pipe (pool-internal)."""

    __slots__ = (
        "name", "spec", "process", "pipe", "busy", "crashed",
        "generation",
    )

    def __init__(self, name, spec, process, pipe, generation):
        self.name = name
        self.spec = spec
        self.process = process
        self.pipe = pipe
        self.busy = False
        self.crashed = False
        self.generation = generation


class WorkerPool:
    """Supervise ``count`` worker processes over one artifact plane.

    Args:
        count: number of worker processes.
        spec_factory: ``(name, index) -> WorkerSpec`` — called at every
            spawn *and respawn*, so it must describe the current state
            (latest database publication / version).
        plane: the supervisor-side artifact plane; the pool records
            worker references at spawn and releases them on crash,
            respawn, and drain.  ``None`` disables plane traffic.
        start_method: multiprocessing start method (``spawn`` unless a
            test overrides it).
        health_interval: seconds between background liveness sweeps
            (``0`` disables the thread; checkout still detects corpses
            opportunistically).
        max_queue_depth: bound on each worker's pending-request queue;
            a fleet with every queue at the bound rejects admission
            with :class:`~repro.errors.OverloadedError`.
    """

    def __init__(
        self,
        count: int,
        spec_factory,
        plane: SharedArtifactPlane | None = None,
        start_method: str = "spawn",
        health_interval: float = HEALTH_INTERVAL,
        max_queue_depth: int = DEFAULT_QUEUE_DEPTH,
    ):
        if count < 1:
            raise ValueError(f"need at least one worker, got {count}")  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
        if max_queue_depth < 1:
            raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
                f"need a queue depth of at least one, got "
                f"{max_queue_depth}"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._spec_factory = spec_factory
        self.plane = plane
        self._cond = threading.Condition()
        self._workers: list[_PoolWorker] = []
        self._generation = 0
        self._closed = False
        self._mutation_lock = threading.Lock()
        self.respawns = 0
        self.crashes = 0
        self.rejections = 0
        self.max_queue_depth = max_queue_depth
        # Per-slot dispatch state; slots survive respawns, so depth
        # accounting is indexed by position, not by worker object.
        self._pending = [0] * count
        self._affinity_hits = [0] * count
        self._affinity_spills = [0] * count
        try:
            for index in range(count):
                self._workers.append(self._spawn(index))
        except BaseException:
            self._kill_all()
            raise
        self._health_thread: threading.Thread | None = None
        if health_interval > 0:
            self._health_thread = threading.Thread(
                target=self._health_loop,
                args=(health_interval,),
                daemon=True,
            )
            self._health_thread.start()

    def __len__(self) -> int:
        return len(self._workers)

    # -- spawning ----------------------------------------------------------

    def _spawn(self, index: int) -> _PoolWorker:
        from repro.server.worker import worker_main

        self._generation += 1
        generation = self._generation
        name = f"w{index}g{generation}"
        spec = self._spec_factory(name, index)
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(spec, child),
            name=f"repro-{name}",
            daemon=True,
        )
        process.start()
        child.close()
        worker = _PoolWorker(name, spec, process, parent, generation)
        if self.plane is not None and spec.database is not None:
            self.plane.acquire(spec.database.token, name)
        deadline = time.monotonic() + BOOT_TIMEOUT
        while True:
            timeout = deadline - time.monotonic()
            if timeout <= 0 or not parent.poll(min(timeout, 0.2)):
                if time.monotonic() >= deadline:
                    self._destroy(worker)
                    raise WorkerCrashError(
                        f"worker {name} did not become ready within "
                        f"{BOOT_TIMEOUT:.0f}s"
                    )
                continue
            try:
                message = parent.recv()
            except (EOFError, OSError):
                self._destroy(worker)
                raise WorkerCrashError(
                    f"worker {name} died during boot"
                ) from None
            if message[0] == "ready":
                if message[1] != spec.db_version:  # pragma: no cover
                    self._destroy(worker)
                    raise WorkerCrashError(
                        f"worker {name} booted at db_version "
                        f"{message[1]}, expected {spec.db_version}"
                    )
                return worker
            if message[0] == "err":
                self._destroy(worker)
                raise WorkerCrashError(str(message[1]))

    def _destroy(self, worker: _PoolWorker) -> None:
        worker.crashed = True
        if self.plane is not None:
            self.plane.release_holder(worker.name)
        try:
            worker.pipe.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            # Workers ignore SIGTERM (process-group signals must not
            # beat the drain), so forced destruction needs SIGKILL.
            worker.process.kill()
        worker.process.join(timeout=5)

    def _respawn_locked(self, index: int) -> None:
        # Condition held by the caller; the dead worker is not busy.
        old = self._workers[index]
        self._destroy(old)
        self.respawns += 1
        self._workers[index] = self._spawn(index)
        self._cond.notify_all()

    # -- checkout / dispatch -----------------------------------------------

    @property
    def affinity_hits(self) -> int:
        return sum(self._affinity_hits)

    @property
    def affinity_spills(self) -> int:
        return sum(self._affinity_spills)

    def admit(
        self, affinity: int | None = None, spill: bool = False
    ) -> int:
        """Elect a worker slot and reserve one unit of queue depth.

        Non-blocking: either returns the elected slot index
        immediately or raises :class:`~repro.errors.OverloadedError`
        when every queue is at :attr:`max_queue_depth` (counted in
        ``rejections``).  The caller *must* pair a successful ``admit``
        with :meth:`release`.
        """
        with self._cond:
            if self._closed:
                raise WorkerCrashError("worker pool is closed")
            try:
                index, outcome = elect_slot(
                    self._pending,
                    self.max_queue_depth,
                    affinity=affinity,
                    spill=spill,
                )
            except OverloadedError:
                self.rejections += 1
                raise
            if outcome == "hit":
                self._affinity_hits[index] += 1
            elif outcome == "spill":
                self._affinity_spills[index] += 1
            self._pending[index] += 1
            return index

    def release(self, index: int) -> None:
        """Return the queue-depth unit reserved by :meth:`admit`."""
        with self._cond:
            self._pending[index] -= 1
            self._cond.notify_all()

    def _checkin(self, worker: _PoolWorker) -> None:
        with self._cond:
            worker.busy = False
            if worker.crashed:
                index = self._workers.index(worker)
                self._respawn_locked(index)  # repro: noqa[LOCK-BLOCKING] -- dead worker's pipe is drained, never awaited; respawn must finish under _cond
            self._cond.notify_all()

    def _serve_plane(self, worker: _PoolWorker, message) -> None:
        tag = message[0]
        if tag == "plane_lookup":
            publication = (
                self.plane.acquire(message[1], worker.name)
                if self.plane is not None
                else None
            )
            worker.pipe.send(("plane", publication))
        elif tag == "plane_publish":
            adopted = (
                self.plane.adopt(message[1], worker.name)
                if self.plane is not None
                else False
            )
            worker.pipe.send(("plane", adopted))
        else:  # pragma: no cover - protocol bug
            raise WorkerCrashError(
                f"unexpected message from worker {worker.name}: "
                f"{tag!r}"
            )

    def _interact(self, worker: _PoolWorker, message):
        """One send → final ``ok``/``err``, serving plane traffic
        in between.  Raises :class:`WorkerCrashError` (and marks the
        worker) when the process dies mid-conversation.

        Fault points: ``pool.crash_before_publish`` kills the worker
        after the request is on the pipe but before any reply arrives
        (the request was never acknowledged), ``pool.crash_after_publish``
        kills it right after the ``ok`` reply (acknowledged, then
        dead) — both land on the normal crash-mark + respawn path.
        """
        try:
            if _chaos_fire("pool.crash_before_publish"):
                worker.process.kill()
                worker.process.join()
            worker.pipe.send(message)
            while True:
                reply = worker.pipe.recv()
                tag = reply[0]
                if tag == "ok":
                    if _chaos_fire("pool.crash_after_publish"):
                        worker.process.kill()
                        worker.process.join()
                        worker.crashed = True
                        self.crashes += 1
                    return reply[1]
                if tag == "err":
                    raise WorkerCrashError(
                        f"worker {worker.name} failed: {reply[1]}"
                    )
                self._serve_plane(worker, reply)
        except (EOFError, BrokenPipeError, OSError):
            worker.crashed = True
            self.crashes += 1
            raise WorkerCrashError(
                f"worker {worker.name} died mid-request (respawning)"
            ) from None

    def execute_json(
        self,
        request_json: str,
        affinity: int | None = None,
        spill: bool = False,
    ) -> str:
        """Serve one protocol request; returns the response JSON.

        Dispatch is depth-aware (:func:`elect_slot`): admission
        reserves a slot on the elected worker's bounded queue — or
        raises :class:`~repro.errors.OverloadedError` when the fleet is
        full — and only then waits for that worker to come free.
        ``spill=True`` (read-only store) lets affinity requests drift
        to shallower siblings instead of stacking up behind one hot
        worker.
        """
        index = self.admit(affinity=affinity, spill=spill)
        try:
            worker = self._checkout_index(index)
            try:
                return self._interact(
                    worker, ("request", request_json)
                )
            finally:
                self._checkin(worker)
        finally:
            self.release(index)

    def execute_on(self, index: int, request_json: str) -> str:
        """Serve on worker ``index`` specifically (sharded serving —
        each worker holds a different shard database).  Tracked in the
        queue depths for observability, but never rejected: a sharded
        fan-out must reach every shard."""
        with self._cond:
            self._pending[index] += 1
        try:
            worker = self._checkout_index(index)
            try:
                return self._interact(
                    worker, ("request", request_json)
                )
            finally:
                self._checkin(worker)
        finally:
            self.release(index)

    def _checkout_index(self, index: int) -> _PoolWorker:
        with self._cond:
            while True:
                if self._closed:
                    raise WorkerCrashError("worker pool is closed")
                worker = self._workers[index]
                if not worker.busy:
                    if worker.crashed or not worker.process.is_alive():
                        if not worker.crashed:
                            self.crashes += 1
                        self._respawn_locked(index)  # repro: noqa[LOCK-BLOCKING] -- dead worker's pipe is drained, never awaited; respawn must finish under _cond
                        worker = self._workers[index]
                    worker.busy = True
                    return worker
                self._cond.wait(timeout=1.0)

    # -- broadcasts --------------------------------------------------------

    def _checkout_all(
        self, timeout: float | None = None
    ) -> list[_PoolWorker]:
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        claimed: list[_PoolWorker] = []
        with self._cond:
            while True:
                for worker in self._workers:
                    if worker in claimed:
                        continue
                    if not worker.busy:
                        worker.busy = True
                        claimed.append(worker)
                if len(claimed) == len(self._workers):
                    return claimed
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return claimed  # caller decides what to do
                self._cond.wait(
                    timeout=1.0
                    if remaining is None
                    else min(remaining, 1.0)
                )

    def _checkin_all(self, workers) -> None:
        with self._cond:
            for worker in workers:
                worker.busy = False
            for worker in list(workers):
                if worker.crashed and worker in self._workers:
                    self._respawn_locked(self._workers.index(worker))  # repro: noqa[LOCK-BLOCKING] -- dead worker's pipe is drained, never awaited; respawn must finish under _cond
            self._cond.notify_all()

    def broadcast_delta(self, delta) -> list[int]:
        """Apply one delta on *every* worker (all slots held, so no
        request observes a half-mutated fleet).  Returns the workers'
        new db_versions; crashed workers respawn at the latest
        publication, which the caller republished first."""
        with self._mutation_lock:
            workers = self._checkout_all()
            versions: list[int] = []
            try:
                for worker in workers:
                    try:
                        versions.append(
                            self._interact(worker, ("delta", delta))  # repro: noqa[LOCK-BLOCKING] -- mutation fan-out IS the serialization point; _mutation_lock exists for this
                        )
                    except WorkerCrashError:
                        # The respawn (at checkin) boots from the
                        # already-republished latest database, so the
                        # fleet converges on the new version anyway.
                        continue
                return versions
            finally:
                self._checkin_all(workers)  # repro: noqa[LOCK-BLOCKING] -- mutation fan-out IS the serialization point; _mutation_lock exists for this

    def stats(self) -> list[dict]:
        """Per-worker counter dicts (briefly claims each worker)."""
        out: list[dict] = []
        for index in range(len(self._workers)):
            try:
                worker = self._checkout_index(index)
            except WorkerCrashError:
                continue
            try:
                out.append(self._interact(worker, ("stats",)))
            except WorkerCrashError:
                continue
            finally:
                self._checkin(worker)
        return out

    def ping(self) -> int:
        """Health-check every idle worker; returns how many answered."""
        alive = 0
        for index in range(len(self._workers)):
            try:
                worker = self._checkout_index(index)
            except WorkerCrashError:
                continue
            try:
                if self._interact(worker, ("ping",)) == "pong":
                    alive += 1
            except WorkerCrashError:
                continue
            finally:
                self._checkin(worker)
        return alive

    # -- health ------------------------------------------------------------

    def _health_loop(self, interval: float) -> None:
        while True:
            time.sleep(interval)
            with self._cond:
                if self._closed:
                    return
                for index, worker in enumerate(self._workers):
                    if (
                        not worker.busy
                        and not worker.crashed
                        and not worker.process.is_alive()
                    ):
                        self.crashes += 1
                        try:
                            self._respawn_locked(index)  # repro: noqa[LOCK-BLOCKING] -- dead worker's pipe is drained, never awaited; respawn must finish under _cond
                        except WorkerCrashError:  # pragma: no cover
                            return

    # -- lifecycle ---------------------------------------------------------

    def _kill_all(self) -> None:
        for worker in self._workers:
            self._destroy(worker)

    def close(self, timeout: float = 10.0) -> bool:
        """Drain in-flight requests and stop every worker.

        Returns ``True`` for a clean drain (every worker finished its
        request and exited on ``drain``); ``False`` when any had to be
        terminated.  Idempotent.
        """
        with self._cond:
            if self._closed:
                return True
            claimed = []  # claim what we can before flagging closed
        claimed = self._checkout_all(timeout=timeout)
        clean = len(claimed) == len(self._workers)
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for worker in self._workers:
            if worker in claimed and not worker.crashed:
                try:
                    self._interact(worker, ("drain",))
                except WorkerCrashError:
                    clean = False
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.kill()  # SIGTERM is ignored by workers
                worker.process.join(timeout=5)
                clean = False
            if self.plane is not None:
                self.plane.release_holder(worker.name)
            try:
                worker.pipe.close()
            except OSError:  # pragma: no cover
                pass
        return clean

    def counters(self) -> dict:
        with self._cond:
            return {
                "workers": len(self._workers),
                "crashes": self.crashes,
                "respawns": self.respawns,
                "affinity_hits": sum(self._affinity_hits),
                "affinity_spills": sum(self._affinity_spills),
                "rejections": self.rejections,
                "queue_capacity": self.max_queue_depth,
                "queue_depths": list(self._pending),
                "per_worker": [
                    {
                        "queue_depth": depth,
                        "affinity_hits": hits,
                        "affinity_spills": spills,
                    }
                    for depth, hits, spills in zip(
                        self._pending,
                        self._affinity_hits,
                        self._affinity_spills,
                    )
                ],
            }

    def worker_pids(self) -> list[int]:
        """OS pids of the live worker processes (RSS accounting)."""
        with self._cond:
            return [
                worker.process.pid
                for worker in self._workers
                if worker.process is not None
                and worker.process.pid is not None
            ]


class LocalDispatcher:
    """Depth-aware dispatch over in-process worker slots.

    The in-process twin of the pool's admission logic, used by the
    threaded and async HTTP fronts when serving from per-worker
    :class:`~repro.facade.Connection` objects: each slot carries a
    bounded pending queue, :meth:`admit` is non-blocking (a full fleet
    raises :class:`~repro.errors.OverloadedError`), and only
    :meth:`acquire` waits — for the elected slot specifically.

    In-process workers share one
    :class:`~repro.session.ArtifactStore`, so there is no per-worker
    cache locality to protect; callers normally omit ``affinity`` and
    election just picks the shallowest queue.
    """

    def __init__(
        self, slots, max_queue_depth: int = DEFAULT_QUEUE_DEPTH
    ):
        self._slots = list(slots)
        if not self._slots:
            raise ValueError("need at least one worker slot")  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
        if max_queue_depth < 1:
            raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- startup config validation; cmd_serve reports and exits
                f"need a queue depth of at least one, got "
                f"{max_queue_depth}"
            )
        self.max_queue_depth = max_queue_depth
        self.rejections = 0
        self._busy = [False] * len(self._slots)
        self._pending = [0] * len(self._slots)
        self._cond = threading.Condition()

    def __len__(self) -> int:
        return len(self._slots)

    def admit(
        self, affinity: int | None = None, spill: bool = False
    ) -> int:
        """Reserve a queue-depth unit on the elected slot (or raise
        :class:`~repro.errors.OverloadedError`); pair with
        :meth:`release`."""
        with self._cond:
            try:
                index, _outcome = elect_slot(
                    self._pending,
                    self.max_queue_depth,
                    affinity=affinity,
                    spill=spill,
                )
            except OverloadedError:
                self.rejections += 1
                raise
            self._pending[index] += 1
            return index

    def acquire(self, index: int):
        """Wait for slot ``index`` and return its worker object."""
        with self._cond:
            while self._busy[index]:
                self._cond.wait(timeout=1.0)
            self._busy[index] = True
            return self._slots[index]

    def release(self, index: int) -> None:
        """Free the slot and its reserved queue-depth unit."""
        with self._cond:
            self._busy[index] = False
            self._pending[index] -= 1
            self._cond.notify_all()

    def counters(self) -> dict:
        with self._cond:
            return {
                "workers": len(self._slots),
                "rejections": self.rejections,
                "queue_capacity": self.max_queue_depth,
                "queue_depths": list(self._pending),
            }


__all__ = [
    "BOOT_TIMEOUT",
    "DEFAULT_QUEUE_DEPTH",
    "HEALTH_INTERVAL",
    "LocalDispatcher",
    "WorkerPool",
    "elect_slot",
]
