"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class QueryError(ReproError):
    """Malformed query: arity mismatch, unknown variable, bad syntax."""


class DatabaseError(ReproError):
    """Malformed database: arity mismatch, unknown relation symbol."""


class OrderError(ReproError):
    """A variable ordering does not match the query it is used with."""


class OutOfBoundsError(ReproError, IndexError):
    """A direct-access index is outside ``[0, number of answers)``.

    Also an :class:`IndexError` so that direct-access objects behave like
    sequences (``for`` loops over them terminate correctly).
    """


class NotAnAnswerError(ReproError, ValueError):
    """Inverse access was asked for a tuple that is not an answer.

    Also a :class:`ValueError` so that :meth:`AnswerView.index` keeps
    the :class:`collections.abc.Sequence` contract (``list.index``
    raises ``ValueError`` for missing values).
    """


class StaleViewError(ReproError):
    """A version-pinned answer view lost its snapshot.

    Prepared views pin the database version they were preprocessed
    against.  Under MVCC (the default) a pinned view keeps serving its
    snapshot across later mutations; this error is the fallback for the
    two cases where that is impossible — the snapshot was evicted from
    the store's retention window, or the store runs in opt-in *strict*
    mode where any read of a non-head version must fail loudly.
    Re-prepare the query to get a fresh view.
    """


class ProtocolError(ReproError, ValueError):
    """A malformed or unsupported session request (text or JSON form)."""


class EngineError(ReproError):
    """An execution engine is unknown or unavailable in this environment."""


class ReadOnlyError(ReproError):
    """A mutation was sent to a server running with ``--read-only``.

    The server answers with HTTP 403 carrying this error type, so the
    HTTP client re-raises it like any other library error.
    """


class OverloadedError(ReproError):
    """Admission control refused a request: every worker queue is full.

    Dispatch is depth-aware and *bounded* — each worker carries at most
    ``queue_depth`` pending requests, so a burst beyond the fleet's
    capacity is rejected immediately instead of piling up unboundedly.
    The server answers HTTP 503 with a ``Retry-After`` header carrying
    this error type; retrying after a short backoff is always safe
    (the request was never started).
    """


class WorkerCrashError(ReproError):
    """A serving worker process died while handling the request.

    The supervisor respawns the worker and re-attaches it to the
    shared-memory artifact plane; the in-flight request that rode the
    crash gets this error instead of hanging.  Retrying is safe for
    read ops (they are idempotent).
    """


class WalError(ReproError):
    """A write-ahead log file is unreadable, corrupt, or inconsistent.

    Torn tails (a crash mid-append) are *not* errors — the reader drops
    the incomplete record and recovery proceeds from the last durable
    one.  This error means the log cannot be trusted at all: a bad
    header, a checksum failure before the tail, or a replay that needs
    a base database no caller supplied.
    """


class InfeasibleError(ReproError):
    """A linear program has no feasible solution."""


class UnboundedError(ReproError):
    """A linear program is unbounded."""
