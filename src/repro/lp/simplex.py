"""An exact two-phase simplex solver over :class:`fractions.Fraction`.

Fractional edge cover numbers feed exponents (the incompatibility number,
Definition 9) and the denominator blow-up λ of Lemma 17, so they must be
exact rationals — floating-point LP is not acceptable. Query-sized LPs are
tiny, so a dense tableau simplex with Bland's anti-cycling rule is plenty.

The solver handles::

    minimize    c . x
    subject to  A_i . x  (<= | >= | ==)  b_i     for every constraint i
                x >= 0
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import InfeasibleError, UnboundedError

LE, GE, EQ = "<=", ">=", "=="


@dataclass(frozen=True)
class Constraint:
    """One linear constraint ``coefficients . x  sense  rhs``."""

    coefficients: tuple[Fraction, ...]
    sense: str
    rhs: Fraction

    def __post_init__(self) -> None:
        if self.sense not in (LE, GE, EQ):
            raise ValueError(f"bad sense {self.sense!r}")


@dataclass(frozen=True)
class LPSolution:
    """An optimal solution: objective value and variable assignment."""

    value: Fraction
    assignment: tuple[Fraction, ...]


def _pivot(
    tableau: list[list[Fraction]], basis: list[int], row: int, col: int
) -> None:
    pivot_value = tableau[row][col]
    tableau[row] = [x / pivot_value for x in tableau[row]]
    for r, other in enumerate(tableau):
        if r != row and other[col] != 0:
            factor = other[col]
            tableau[r] = [
                x - factor * y for x, y in zip(other, tableau[row])
            ]
    basis[row] = col


def _run_simplex(
    tableau: list[list[Fraction]], basis: list[int], num_cols: int
) -> None:
    """Optimize in place. The last tableau row is the objective row.

    Uses Bland's rule (smallest eligible index) which guarantees
    termination. Raises UnboundedError when a column can grow forever.
    """
    objective = tableau[-1]
    while True:
        entering = next(
            (j for j in range(num_cols) if objective[j] < 0), None
        )
        if entering is None:
            return
        best_row = None
        best_ratio = None
        for r in range(len(tableau) - 1):
            coefficient = tableau[r][entering]
            if coefficient > 0:
                ratio = tableau[r][-1] / coefficient
                if (
                    best_ratio is None
                    or ratio < best_ratio
                    or (ratio == best_ratio and basis[r] < basis[best_row])
                ):
                    best_ratio = ratio
                    best_row = r
        if best_row is None:
            raise UnboundedError("LP is unbounded")
        _pivot(tableau, basis, best_row, entering)
        objective = tableau[-1]


def solve_lp(
    objective: Sequence[Fraction | int],
    constraints: Sequence[Constraint],
) -> LPSolution:
    """Minimize ``objective . x`` subject to ``constraints`` and ``x >= 0``.

    Returns an exact optimal :class:`LPSolution`. Raises
    :class:`~repro.errors.InfeasibleError` / UnboundedError as appropriate.
    """
    cost = [Fraction(c) for c in objective]
    n = len(cost)
    rows: list[list[Fraction]] = []
    senses: list[str] = []
    rhs: list[Fraction] = []
    for constraint in constraints:
        coefficients = [Fraction(c) for c in constraint.coefficients]
        if len(coefficients) != n:
            raise ValueError("constraint width does not match objective")
        right = Fraction(constraint.rhs)
        sense = constraint.sense
        if right < 0:  # normalize to nonnegative right-hand sides
            coefficients = [-c for c in coefficients]
            right = -right
            sense = {LE: GE, GE: LE, EQ: EQ}[sense]
        rows.append(coefficients)
        senses.append(sense)
        rhs.append(right)

    m = len(rows)
    num_slack = sum(1 for s in senses if s in (LE, GE))
    num_artificial = sum(1 for s in senses if s in (GE, EQ))
    total = n + num_slack + num_artificial

    tableau: list[list[Fraction]] = []
    basis: list[int] = []
    slack_index = n
    artificial_index = n + num_slack
    artificial_columns: list[int] = []
    for i in range(m):
        row = rows[i] + [Fraction(0)] * (total - n) + [rhs[i]]
        if senses[i] == LE:
            row[slack_index] = Fraction(1)
            basis.append(slack_index)
            slack_index += 1
        elif senses[i] == GE:
            row[slack_index] = Fraction(-1)
            slack_index += 1
            row[artificial_index] = Fraction(1)
            basis.append(artificial_index)
            artificial_columns.append(artificial_index)
            artificial_index += 1
        else:  # EQ
            row[artificial_index] = Fraction(1)
            basis.append(artificial_index)
            artificial_columns.append(artificial_index)
            artificial_index += 1
        tableau.append(row)

    # Phase 1: minimize the sum of artificial variables.
    phase1 = [Fraction(0)] * (total + 1)
    for col in artificial_columns:
        phase1[col] = Fraction(1)
    tableau.append(phase1)
    for r, b in enumerate(basis):
        if b in artificial_columns:
            tableau[-1] = [
                x - y for x, y in zip(tableau[-1], tableau[r])
            ]
    _run_simplex(tableau, basis, total)
    if -tableau[-1][-1] != 0:
        raise InfeasibleError("LP is infeasible")
    tableau.pop()

    # Drive any artificial variable out of the basis (degenerate cases).
    for r, b in enumerate(basis):
        if b in artificial_columns:
            pivot_col = next(
                (
                    j
                    for j in range(n + num_slack)
                    if tableau[r][j] != 0
                ),
                None,
            )
            if pivot_col is not None:
                _pivot(tableau, basis, r, pivot_col)

    # Phase 2: minimize the real objective over structural+slack columns.
    usable = n + num_slack
    phase2 = [Fraction(0)] * (total + 1)
    for j in range(n):
        phase2[j] = cost[j]
    tableau.append(phase2)
    for r, b in enumerate(basis):
        if b < total and tableau[-1][b] != 0:
            factor = tableau[-1][b]
            tableau[-1] = [
                x - factor * y for x, y in zip(tableau[-1], tableau[r])
            ]
    _run_simplex(tableau, basis, usable)

    assignment = [Fraction(0)] * n
    for r, b in enumerate(basis):
        if b < n:
            assignment[b] = tableau[r][-1]
    value = sum(
        (c * x for c, x in zip(cost, assignment)), start=Fraction(0)
    )
    return LPSolution(value=value, assignment=tuple(assignment))


def maximize_lp(
    objective: Sequence[Fraction | int],
    constraints: Sequence[Constraint],
) -> LPSolution:
    """Maximize ``objective . x`` (same constraint conventions)."""
    solution = solve_lp([-Fraction(c) for c in objective], constraints)
    return LPSolution(
        value=-solution.value, assignment=solution.assignment
    )
