"""Exact rational linear programming and hypergraph covers."""

from repro.lp.covers import (
    fractional_edge_cover,
    fractional_edge_cover_number,
    fractional_independent_set,
    fractional_independent_set_number,
    is_independent_set,
    maximum_independent_set,
)
from repro.lp.simplex import EQ, GE, LE, Constraint, LPSolution, maximize_lp, solve_lp

__all__ = [
    "Constraint",
    "EQ",
    "GE",
    "LE",
    "LPSolution",
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "fractional_independent_set",
    "fractional_independent_set_number",
    "is_independent_set",
    "maximum_independent_set",
    "maximize_lp",
    "solve_lp",
]
