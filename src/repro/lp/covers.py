"""Fractional edge covers and independent sets of hypergraphs (Section 2.3).

* ``fractional_edge_cover_number`` — ρ*(H), with an optimal weighting.
* ``fractional_independent_set_number`` — α*(H); equals ρ*(H) by LP
  duality when every vertex is covered by an edge.
* ``maximum_independent_set`` — an optimal *integral* independent set
  (brute force; in acyclic hypergraphs its size equals ρ*, the fact used
  by the star embedding of Lemma 15).

All values are exact :class:`fractions.Fraction` numbers.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

from repro.hypergraph.hypergraph import Hypergraph
from repro.lp.simplex import GE, LE, Constraint, maximize_lp, solve_lp


def fractional_edge_cover(
    hypergraph: Hypergraph,
) -> tuple[Fraction, dict[frozenset[str], Fraction]]:
    """Return ``(ρ*(H), weights)`` for an optimal fractional edge cover.

    The LP has one variable per edge, minimizes total weight, and demands
    that every vertex receive total incident weight at least 1.
    """
    edges = sorted(hypergraph.edges, key=lambda e: tuple(sorted(e)))
    vertices = sorted(hypergraph.vertices)
    if not vertices:
        return Fraction(0), {}
    constraints = []
    for vertex in vertices:
        row = tuple(
            Fraction(1) if vertex in edge else Fraction(0)
            for edge in edges
        )
        constraints.append(Constraint(row, GE, Fraction(1)))
    solution = solve_lp([Fraction(1)] * len(edges), constraints)
    weights = {
        edge: weight
        for edge, weight in zip(edges, solution.assignment)
        if weight != 0
    }
    return solution.value, weights


def fractional_edge_cover_number(hypergraph: Hypergraph) -> Fraction:
    """ρ*(H) as an exact rational."""
    value, _ = fractional_edge_cover(hypergraph)
    return value


def fractional_independent_set(
    hypergraph: Hypergraph,
) -> tuple[Fraction, dict[str, Fraction]]:
    """Return ``(α*(H), weights)`` for an optimal fractional independent set.

    Maximizes the total vertex weight subject to weight at most 1 per edge
    and per vertex (the paper maps vertices into [0, 1]).
    """
    vertices = sorted(hypergraph.vertices)
    if not vertices:
        return Fraction(0), {}
    index = {v: i for i, v in enumerate(vertices)}
    constraints = []
    for edge in sorted(hypergraph.edges, key=lambda e: tuple(sorted(e))):
        row = [Fraction(0)] * len(vertices)
        for vertex in edge:
            row[index[vertex]] = Fraction(1)
        constraints.append(Constraint(tuple(row), LE, Fraction(1)))
    for vertex in vertices:  # phi(v) <= 1
        row = [Fraction(0)] * len(vertices)
        row[index[vertex]] = Fraction(1)
        constraints.append(Constraint(tuple(row), LE, Fraction(1)))
    solution = maximize_lp([Fraction(1)] * len(vertices), constraints)
    weights = {
        vertex: weight
        for vertex, weight in zip(vertices, solution.assignment)
        if weight != 0
    }
    return solution.value, weights


def fractional_independent_set_number(hypergraph: Hypergraph) -> Fraction:
    """α*(H) as an exact rational."""
    value, _ = fractional_independent_set(hypergraph)
    return value


def is_independent_set(hypergraph: Hypergraph, vertices) -> bool:
    """True when every edge contains at most one of ``vertices``."""
    vertex_set = set(vertices)
    return all(len(edge & vertex_set) <= 1 for edge in hypergraph.edges)


def maximum_independent_set(hypergraph: Hypergraph) -> frozenset[str]:
    """A maximum integral independent set, by brute force.

    Exponential in the number of vertices — acceptable because hypergraphs
    here are query-sized (data complexity).
    """
    vertices = sorted(hypergraph.vertices)
    for size in range(len(vertices), 0, -1):
        for subset in combinations(vertices, size):
            if is_independent_set(hypergraph, subset):
                return frozenset(subset)
    return frozenset()
