"""Session-scoped LRU caches and their observability counters.

The session amortizes three artifacts across requests, each in its own
LRU (bounded, so a long-lived serving process cannot grow without
limit):

* materialized bag relations, keyed by the *decomposition* (not the
  order) — shared by every order inducing the same disruption-free
  decomposition;
* counting forests, keyed by decomposition + projected set;
* assembled :class:`~repro.core.access.DirectAccess` structures, keyed
  by the exact (query, order, projected) request.

:class:`CacheStats` counts hits/misses/evictions per cache plus the
tuple-level work actually performed (bag materializations, forest
builds), so tests and operators can verify that a warm request did zero
preprocessing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters exposed by :meth:`repro.session.AccessSession.cache_stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class SessionStats:
    """Aggregate observability for one :class:`AccessSession`.

    ``bag_materializations`` / ``forest_builds`` count *work done*, not
    lookups: a request served entirely from cache leaves both untouched
    — the property the acceptance tests pin down.

    Instances are mutated only under the owning session's ``RLock``;
    :meth:`snapshot` (taken through
    :meth:`~repro.session.AccessSession.cache_stats`, which holds that
    lock) therefore returns an internally consistent plain-dict copy.
    """

    preprocessing: CacheStats = field(default_factory=CacheStats)
    forest: CacheStats = field(default_factory=CacheStats)
    access: CacheStats = field(default_factory=CacheStats)
    plans: CacheStats = field(default_factory=CacheStats)
    decompositions: CacheStats = field(default_factory=CacheStats)
    bag_materializations: int = 0
    forest_builds: int = 0
    requests: int = 0
    advisor_calls: int = 0
    cache_preferred_orders: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "advisor_calls": self.advisor_calls,
            "cache_preferred_orders": self.cache_preferred_orders,
            "bag_materializations": self.bag_materializations,
            "forest_builds": self.forest_builds,
            "preprocessing": self.preprocessing.as_dict(),
            "forest": self.forest.as_dict(),
            "access": self.access.as_dict(),
            "plans": self.plans.as_dict(),
            "decompositions": self.decompositions.as_dict(),
        }


class LRUCache:
    """A minimal ordered-dict LRU with externally-owned stats.

    ``get`` refreshes recency; ``put`` evicts the least recently used
    entry beyond ``capacity``.  ``capacity=None`` means unbounded (used
    by tests); ``capacity=0`` disables caching entirely.
    """

    def __init__(self, capacity: int | None, stats: CacheStats):
        if capacity is not None and capacity < 0:
            raise ValueError(f"negative cache capacity {capacity}")
        self.capacity = capacity
        self.stats = stats
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Membership *without* touching recency or hit/miss counters
        (used by the cache-aware planner to peek at warm orders)."""
        return key in self._entries

    def get(self, key):
        """The cached value, or ``None`` on a miss (values are never
        ``None``: every artifact is a dict or structure)."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key, value) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
