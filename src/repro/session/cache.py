"""Session-scoped caches and their observability counters.

The serving layer amortizes its artifacts across requests, each kind in
its own bounded cache (so a long-lived serving process cannot grow
without limit):

* materialized bag relations, keyed by the *decomposition* (not the
  order) — shared by every order inducing the same disruption-free
  decomposition;
* counting forests, keyed by decomposition + projected set;
* assembled :class:`~repro.core.access.DirectAccess` structures, keyed
  by the exact (query, order, projected) request.

Two cache flavours live here.  :class:`LRUCache` is the plain
recency-evicting map.  :class:`CostAwareCache` is what the shared
:class:`~repro.session.artifacts.ArtifactStore` uses for preprocessing
artifacts: each entry carries its *rebuild cost* — the decomposition
exponent ``ι`` of Theorem 44, known exactly before any data is touched
— and eviction sacrifices the cheapest-to-rebuild entry first (recency
only breaks ties).  Evicting an ``O(|D|^2)`` counting forest to keep
three ``O(|D|)`` ones is how a plain LRU thrashes a serving workload;
the exponent is a better oracle than recency because the paper makes it
a *certainty*, not a heuristic.

:class:`CacheStats` counts hits/misses/evictions per cache plus the
tuple-level work actually performed (bag materializations, forest
builds), so tests and operators can verify that a warm request did zero
preprocessing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters exposed by :meth:`repro.session.AccessSession.cache_stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class SessionStats:
    """Aggregate observability for one :class:`AccessSession`.

    ``bag_materializations`` / ``forest_builds`` count *work done*, not
    lookups: a request served entirely from cache leaves both untouched
    — the property the acceptance tests pin down.

    Instances are mutated only under the owning session's ``RLock``;
    :meth:`snapshot` (taken through
    :meth:`~repro.session.AccessSession.cache_stats`, which holds that
    lock) therefore returns an internally consistent plain-dict copy.
    """

    preprocessing: CacheStats = field(default_factory=CacheStats)
    forest: CacheStats = field(default_factory=CacheStats)
    access: CacheStats = field(default_factory=CacheStats)
    plans: CacheStats = field(default_factory=CacheStats)
    decompositions: CacheStats = field(default_factory=CacheStats)
    bag_materializations: int = 0
    forest_builds: int = 0
    requests: int = 0
    advisor_calls: int = 0
    cache_preferred_orders: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "advisor_calls": self.advisor_calls,
            "cache_preferred_orders": self.cache_preferred_orders,
            "bag_materializations": self.bag_materializations,
            "forest_builds": self.forest_builds,
            "preprocessing": self.preprocessing.as_dict(),
            "forest": self.forest.as_dict(),
            "access": self.access.as_dict(),
            "plans": self.plans.as_dict(),
            "decompositions": self.decompositions.as_dict(),
        }


class LRUCache:
    """A minimal ordered-dict LRU with externally-owned stats.

    ``get`` refreshes recency; ``put`` evicts the least recently used
    entry beyond ``capacity``.  ``capacity=None`` means unbounded (used
    by tests); ``capacity=0`` disables caching entirely.
    """

    def __init__(self, capacity: int | None, stats: CacheStats):
        if capacity is not None and capacity < 0:
            raise ValueError(f"negative cache capacity {capacity}")  # repro: noqa[EXC-TAXONOMY] -- constructor contract; callers validate config at startup
        self.capacity = capacity
        self.stats = stats
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Membership *without* touching recency or hit/miss counters
        (used by the cache-aware planner to peek at warm orders)."""
        return key in self._entries

    def get(self, key):
        """The cached value, or ``None`` on a miss (values are never
        ``None``: every artifact is a dict or structure)."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key, value) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


class CostAwareCache:
    """A bounded cache that evicts the cheapest-to-rebuild entry first.

    Each entry carries a ``cost`` — for preprocessing artifacts, the
    decomposition exponent ``ι``, so re-deriving an evicted entry costs
    ``O(|D|^cost)``.  Eviction is the classic *GreedyDual* policy: an
    entry's credit is ``clock + cost`` at insert/hit time, the victim
    is the entry with the lowest credit (ties to the least recently
    touched), and the clock advances to the victim's credit.  So an
    expensive decomposition outlives many cheap ones, but ages out
    eventually instead of squatting forever, and with uniform costs the
    policy degenerates to exact LRU.

        >>> from fractions import Fraction
        >>> stats = CacheStats()
        >>> cache = CostAwareCache(2, stats)
        >>> cache.put("path", "forest-1", cost=1)
        >>> cache.put("triangle", "forest-2", cost=Fraction(3, 2))
        >>> cache.put("star", "forest-3", cost=1)   # overflow
        >>> "triangle" in cache    # the ι=3/2 artifact survives ...
        True
        >>> "path" in cache        # ... the cheap ι=1 one is evicted
        False
        >>> stats.evictions
        1

    Lookups can attribute hit/miss counters to a *second* per-caller
    :class:`CacheStats` (``extra``) on top of the cache's own aggregate
    — this is how per-worker sessions keep their own counters over one
    shared store.  The class itself is not locked; the owning
    :class:`~repro.session.artifacts.ArtifactStore` serializes access
    behind its registry lock.
    """

    def __init__(self, capacity: int | None, stats: CacheStats):
        if capacity is not None and capacity < 0:
            raise ValueError(f"negative cache capacity {capacity}")  # repro: noqa[EXC-TAXONOMY] -- constructor contract; callers validate config at startup
        self.capacity = capacity
        self.stats = stats
        self._entries: OrderedDict = OrderedDict()
        self._credits: dict = {}
        self._costs: dict = {}
        self._clock = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Membership *without* touching recency or hit/miss counters
        (used by the cache-aware planner to peek at warm orders)."""
        return key in self._entries

    def peek(self, key):
        """The cached value without counters or recency (or ``None``)."""
        return self._entries.get(key)

    def keys(self) -> list:
        """A snapshot of the cached keys (insertion/recency order)."""
        return list(self._entries)

    def pop(self, key):
        """Remove ``key`` and return ``(value, cost)``.

        Not an eviction (no counters move): this is the store's
        carry-forward surgery when a delta re-keys surviving artifacts
        to the new database version.  ``KeyError`` when absent.
        """
        value = self._entries.pop(key)
        self._credits.pop(key, None)
        cost = self._costs.pop(key, 0)
        return value, cost

    def get(self, key, extra: CacheStats | None = None):
        """The cached value, or ``None`` on a miss (values are never
        ``None``); counts into the aggregate stats and, if given, the
        caller's ``extra`` stats."""
        counters = (self.stats,) if extra is None else (self.stats, extra)
        try:
            value = self._entries[key]
        except KeyError:
            for stats in counters:
                stats.misses += 1
            return None
        self._entries.move_to_end(key)
        # A hit renews the entry's credit at the current clock: recently
        # useful entries stay ahead of the aging front.
        self._credits[key] = self._clock + self._costs[key]
        for stats in counters:
            stats.hits += 1
        return value

    def put(self, key, value, cost=0, extra: CacheStats | None = None) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._costs[key] = cost
        self._credits[key] = self._clock + cost
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._evict_one(extra)

    def _evict_one(self, extra: CacheStats | None) -> None:
        # Victim: minimum credit; ties go to the least recently used
        # (OrderedDict iterates oldest first, so the first minimum wins).
        victim = min(self._entries, key=self._credits.__getitem__)
        self._clock = self._credits[victim]
        del self._entries[victim]
        del self._credits[victim]
        del self._costs[victim]
        self.stats.evictions += 1
        if extra is not None:
            extra.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._credits.clear()
        self._costs.clear()
        self._clock = 0
