"""The serving layer: one database, many direct-access requests.

Theorem 44 makes preprocessing cost an exact function of the query and
the variable order, which means a long-lived service can *plan*: many
orders induce the same disruption-free decomposition and can share one
``O(|D|^ι)`` preprocessing pass, and every query over one database can
share one dictionary encoding.  :class:`AccessSession` is that service
core:

* at construction it pins an execution engine and lets it pre-encode
  the database (shared-domain dictionary under numpy, warm sorted
  caches under Python);
* each :meth:`access` request reuses, in order of coarseness, the exact
  :class:`~repro.core.access.DirectAccess` structure, the counting
  forest, or the materialized bag relations of any earlier request
  whose decomposition matches — verified per request by the cache-stats
  counters;
* when no order is given, the request is planned through
  :mod:`repro.core.advisor`, optionally *cache-aware*: among orders
  whose exponent is within ``cache_slack`` of the optimum, one whose
  decomposition is already cached wins over a marginally cheaper cold
  one.

Concurrency model (since the ``repro serve`` PR): the artifacts live in
a shared :class:`~repro.session.artifacts.ArtifactStore`, and the
session itself is a *cheap front* — per-worker counters plus planning
sugar.  Cache lookups take the store's short registry lock; cold builds
take a **per-artifact** build lock, so two threads preprocessing
*different* decompositions proceed concurrently while two threads
racing for the *same* artifact do the work exactly once.  The served
structures are immutable after construction, so concurrent reads of a
returned :class:`DirectAccess` need no coordination.  A session created
the classic way (``AccessSession(database)``) owns a private store and
behaves exactly as before; sessions created with
:meth:`ArtifactStore.session` share one store across workers.

This module is the engine room behind the public facade
(:func:`repro.connect` / :class:`repro.Connection`): prefer the facade
in application code.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from fractions import Fraction

from repro.core.access import DirectAccess
from repro.core.advisor import (
    OrderReport,
    rank_orders,
    rank_orders_with_prefix,
)
from repro.core.decomposition import DisruptionFreeDecomposition
from repro.core.preprocessing import Preprocessing
from repro.core import tasks
from repro.data.database import Database
from repro.engine.base import Engine
from repro.engine.registry import use_engine
from repro.errors import OrderError
from repro.query.parser import parse_query
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder
from repro.session.artifacts import ArtifactStore
from repro.session.cache import SessionStats


def _as_order(order) -> VariableOrder:
    if isinstance(order, VariableOrder):
        return order
    return VariableOrder(list(order))


class AccessSession:
    """Amortized direct access for repeated requests over one database.

    Args:
        database: the database served; owned by the session's store for
            its lifetime (the engine pre-encodes it in place).  Omit it
            when attaching to an existing ``store``.
        engine: execution engine (name, instance, or ``None`` for the
            process-global active engine); pinned for every request so
            cached artifacts are internally consistent.
        capacity: per-cache capacity (``None`` = unbounded).
        cache_slack: how much preprocessing exponent the planner may
            give up for a warm cache: among candidate orders with
            ``ι ≤ ι_min + cache_slack``, an already-cached decomposition
            is preferred.  ``0`` (default) only breaks exact ties
            towards the cache; the asymptotic guarantee is unchanged.
        store: a shared :class:`~repro.session.artifacts.ArtifactStore`
            to attach to (per-worker sessions over one store).  With
            ``store`` given, ``database``/``engine``/``capacity`` must
            be left at their defaults — the store owns them.
        retain_versions: MVCC snapshot window of the session's own
            store (see :class:`~repro.session.mvcc.SnapshotPlane`);
            a store setting — only valid when the session builds its
            own store.
        strict_views: opt-in strict staleness (any read of a non-head
            version raises); a store setting like ``retain_versions``.
    """

    #: Cache-aware planning inspects at most this many slack-window
    #: candidates per plan; beyond it (symmetric queries tie
    #: factorial-many orders) extra candidates add LP solves and memory
    #: but no real planning signal.
    PLAN_WINDOW = 16

    def __init__(
        self,
        database: Database | None = None,
        engine: str | Engine | None = None,
        capacity: int | None = 64,
        cache_slack: Fraction | int | float = 0,
        store: ArtifactStore | None = None,
        retain_versions: int | None = None,
        strict_views: bool = False,
    ):
        if store is None:
            if database is None:
                raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- constructor contract; API misuse, not a serving failure
                    "AccessSession needs a database (or a store)"
                )
            store = ArtifactStore(
                database,
                engine=engine,
                capacity=capacity,
                retain_versions=retain_versions,
                strict_views=strict_views,
            )
            self._owns_store = True
        else:
            if database is not None and database is not store.database:
                raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- constructor contract; API misuse, not a serving failure
                    "a store-attached session serves the store's "
                    "database; do not pass another one"
                )
            if engine is not None and engine is not store.engine:
                raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- constructor contract; API misuse, not a serving failure
                    "a store-attached session serves with the store's "
                    "engine; do not pass another one"
                )
            if retain_versions is not None or strict_views:
                raise ValueError(  # repro: noqa[EXC-TAXONOMY] -- constructor contract; API misuse, not a serving failure
                    "retain_versions/strict_views are store settings; "
                    "set them on the shared store"
                )
            self._owns_store = False
        self.store = store
        self.engine = store.engine
        self.cache_slack = Fraction(cache_slack)
        self.stats = SessionStats()
        # A leaf lock for this session's own counters and snapshots —
        # held for increments only, never while calling into the store
        # (whose build locks may in turn briefly take this lock from
        # another thread).
        self._lock = threading.RLock()
        with store._registry_lock:
            store.stats.sessions += 1

    @property
    def database(self) -> Database:
        """The currently served database (the store's newest version)."""
        return self.store.database

    @property
    def db_version(self) -> int:
        """The store's database version (bumped by :meth:`apply`)."""
        return self.store.db_version

    @property
    def _plans(self):
        # Back-compat introspection handle (tests peek at ._entries).
        return self.store.cache("plans")

    # -- mutations ---------------------------------------------------------

    def apply(self, delta) -> int:
        """Apply a :class:`~repro.data.delta.Delta` to the served
        database and return the new version.

        The store maintains the shared encoding incrementally when
        order-preservation allows and invalidates exactly the cached
        artifacts whose decomposition touches a mutated relation;
        everything else keeps serving warm (see
        :meth:`~repro.session.artifacts.ArtifactStore.apply`).  Shared
        stores propagate the new version to every attached worker.
        """
        return self.store.apply(delta)

    # -- planning ----------------------------------------------------------

    def _ranked(
        self,
        query: JoinQuery,
        prefix: VariableOrder | None,
        version: int | None = None,
    ) -> list[OrderReport]:
        key = (
            query.signature(),
            tuple(prefix) if prefix is not None else None,
            # The stored list is trimmed to the slack window, so a
            # mutated cache_slack must miss and re-plan.
            self.cache_slack,
        )

        def build_plan() -> list[OrderReport]:
            with self._lock:
                self.stats.advisor_calls += 1
            # limit streams via heapq.nsmallest: only PLAN_WINDOW
            # reports are ever retained, not the factorial ranking.
            ranked = (
                rank_orders(query, limit=self.PLAN_WINDOW)
                if prefix is None
                else rank_orders_with_prefix(
                    query, prefix, limit=self.PLAN_WINDOW
                )
            )
            # Keep only the candidates plan() can ever pick — those
            # within cache_slack of the optimum, capped at PLAN_WINDOW
            # (symmetric queries can tie factorial-many orders at the
            # optimum) — and attach their decompositions for key
            # lookups and cache-free serving.  The <= PLAN_WINDOW
            # rebuilds duplicate work _rank discarded, but next to the
            # factorial ranking itself that is noise, and it keeps the
            # advisor API free of a retain-decompositions mode.
            threshold = ranked[0].iota + max(self.cache_slack, 0)
            return [
                replace(
                    report,
                    decomposition=self._decomposition_for(
                        key[0], query, report.order, version
                    ),
                )
                for report in ranked
                if report.iota <= threshold
            ]

        # Plans are data-independent (``relations=None``): a delta
        # carries them to the new version instead of invalidating.
        return self.store.get_or_build(
            "plans", key, build_plan, extra=self.stats.plans,
            version=version, relations=None,
        )

    def _decomposition_for(
        self,
        signature,
        query: JoinQuery,
        order: VariableOrder,
        version: int | None = None,
    ) -> DisruptionFreeDecomposition:
        key = (signature, tuple(order))
        return self.store.get_or_build(
            "decompositions",
            key,
            lambda: DisruptionFreeDecomposition(query, order),
            extra=self.stats.decompositions,
            version=version,
            relations=None,
        )

    def plan(
        self,
        query: JoinQuery,
        prefix: VariableOrder | None = None,
        version: int | None = None,
    ) -> OrderReport:
        """The order the session would serve ``query`` with.

        The cheapest order by incompatibility number — except that among
        candidates within ``cache_slack`` of the optimum, one whose
        decomposition already sits in the session caches is preferred
        (its preprocessing is free).
        """
        if prefix is not None:
            prefix = _as_order(prefix)
        ranked = self._ranked(query, prefix, version)
        best = ranked[0]
        if self.cache_slack < 0:
            return best
        signature = query.signature()
        for report in ranked:
            if report.iota > best.iota + self.cache_slack:
                break
            key = self._preprocessing_key(
                signature, report.decomposition
            )
            if self.store.contains(
                "preprocessing", key, version=version
            ):
                if report is not best:
                    with self._lock:
                        self.stats.cache_preferred_orders += 1
                return report
        return best

    # -- cache keys --------------------------------------------------------

    def _preprocessing_key(
        self, signature, decomposition: DisruptionFreeDecomposition
    ) -> tuple:
        return (
            signature,
            decomposition.cache_key(),
            self.engine.name,
        )

    # -- serving -----------------------------------------------------------

    def access(
        self,
        query: JoinQuery | str,
        order=None,
        prefix=None,
        projected: frozenset[str] | set[str] = frozenset(),
    ) -> DirectAccess:
        """A (possibly cached) :class:`DirectAccess` for the request.

        Args:
            query: a :class:`JoinQuery` or its textual form.
            order: the full variable order; ``None`` lets the advisor
                choose (cache-aware, see :meth:`plan`).
            prefix: with ``order=None``, a required order prefix — the
                advisor picks the cheapest completion (Definition 49).
            projected: variables to project away; must form a suffix of
                ``order`` (explicit orders only — the planner currently
                serves full join queries).
        """
        return self.access_versioned(
            query, order=order, prefix=prefix, projected=projected
        )[0]

    def access_versioned(
        self,
        query: JoinQuery | str,
        order=None,
        prefix=None,
        projected: frozenset[str] | set[str] = frozenset(),
        at_version: int | None = None,
    ) -> tuple[DirectAccess, int]:
        """:meth:`access` plus the database version it was served at.

        The ``(db_version, database)`` pair is snapshotted once at
        request start, so a delta applied mid-request cannot mix
        versions: the returned structure consistently reflects the
        snapshot, and the version lets callers (the facade's
        :class:`~repro.facade.AnswerView`) pin it for staleness
        detection.  ``at_version`` serves the request against a
        *retained MVCC snapshot* instead of the head — version-pinned
        wire reads ride this; it raises
        :class:`~repro.errors.StaleViewError` when the snapshot was
        evicted (or in strict mode).
        """
        if isinstance(query, str):
            query = parse_query(query)
        projected = frozenset(projected)
        decomposition: DisruptionFreeDecomposition | None = None
        if prefix is not None:
            prefix = _as_order(prefix)  # normalize once: may be lazy
        if order is not None:
            order = _as_order(order)
            wanted = list(prefix) if prefix is not None else []
            if wanted and list(order)[: len(wanted)] != wanted:
                raise OrderError(
                    f"order {list(order)} does not start with the "
                    f"requested prefix {wanted}"
                )
        elif projected:
            raise OrderError(
                "projected access needs an explicit order (the "
                "planner serves full join queries)"
            )
        with self._lock:
            self.stats.requests += 1
        if at_version is None:
            version, database = self.store.current()
        else:
            version = at_version
            database = self.store.database_at(at_version)
        if order is None:
            report = self.plan(query, prefix, version)
            order = report.order
            decomposition = report.decomposition
        signature = query.signature()
        relations = frozenset(query.relation_symbols)
        access_key = (signature, tuple(order), projected)
        access = self.store.get(
            "access", access_key, extra=self.stats.access,
            version=version,
        )
        if access is not None:
            return access, version
        if decomposition is None:
            decomposition = self._decomposition_for(
                signature, query, order, version
            )
        iota = decomposition.incompatibility_number
        access = self.store.get_or_build(
            "access",
            access_key,
            lambda: self._build(
                query, order, projected, decomposition, signature,
                database, version, relations,
            ),
            cost=iota,
            extra=self.stats.access,
            counted=True,  # the get() above recorded this miss
            version=version,
            relations=relations,
        )
        return access, version

    def _build(
        self,
        query: JoinQuery,
        order: VariableOrder,
        projected: frozenset[str],
        decomposition: DisruptionFreeDecomposition,
        signature,
        database: Database,
        version: int,
        relations: frozenset[str],
    ) -> DirectAccess:
        preprocessing_key = self._preprocessing_key(
            signature, decomposition
        )
        forest_key = preprocessing_key + (projected,)
        iota = decomposition.incompatibility_number
        with use_engine(self.engine):

            def build_bags():
                preprocessing = Preprocessing(
                    query, order, database,
                    decomposition=decomposition,
                )
                with self._lock:
                    self.stats.bag_materializations += (
                        preprocessing.materialized_bag_count
                    )
                return preprocessing.bag_tables()

            bag_tables = self.store.get_or_build(
                "preprocessing",
                preprocessing_key,
                build_bags,
                cost=iota,
                extra=self.stats.preprocessing,
                version=version,
                relations=relations,
            )
            # With the tables in hand, re-assembling Preprocessing is a
            # pointer rewire — zero materializations, any order of the
            # shared decomposition.
            preprocessing = Preprocessing(
                query, order, database,
                decomposition=decomposition,
                bag_tables=bag_tables,
            )

            def build_forest():
                access = DirectAccess(
                    query, order, database, projected,
                    preprocessing=preprocessing,
                )
                with self._lock:
                    self.stats.forest_builds += len(access.forest)
                return access.forest

            forest = self.store.get_or_build(
                "forest",
                forest_key,
                build_forest,
                cost=iota,
                extra=self.stats.forest,
                version=version,
                relations=relations,
            )
            return DirectAccess(
                query, order, database, projected,
                preprocessing=preprocessing,
                forest=forest,
            )

    # -- task-layer conveniences ------------------------------------------

    def count(self, query, order=None, prefix=None) -> int:
        """Number of answers (without enumerating them)."""
        return len(self.access(query, order=order, prefix=prefix))

    def median(self, query, order=None, prefix=None) -> tuple:
        """The middle answer under the served order."""
        return tasks.median_impl(
            self.access(query, order=order, prefix=prefix)
        )

    def page(
        self, query, page_number: int, page_size: int, order=None,
        prefix=None,
    ) -> list[tuple]:
        """One page of ranked answers (batched access)."""
        return tasks.page_impl(
            self.access(query, order=order, prefix=prefix),
            page_number,
            page_size,
        )

    def rank(self, query, row: tuple, order=None, prefix=None):
        """Inverse access: the index of ``row``, or ``None`` if no answer."""
        return self.access(
            query, order=order, prefix=prefix
        ).rank_of(row)

    # -- observability -----------------------------------------------------

    def cache_stats(self) -> dict:
        """A snapshot of this session's cache and work counters (plain
        dicts, safe to read while other threads serve requests), plus
        the shared store's build counters under ``"store"``."""
        with self._lock:
            out = self.stats.as_dict()
        out["store"] = self.store.cache_stats()
        return out

    def clear(self) -> None:
        """Drop every cached artifact (counters are kept).

        A session that *owns* its store (the classic
        ``AccessSession(database)`` construction) clears it; a
        per-worker session attached to a shared store must not wipe its
        siblings' artifacts — clear the store itself for that.
        """
        if self._owns_store:
            self.store.clear()


__all__ = ["AccessSession"]
