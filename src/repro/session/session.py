"""The serving layer: one database, many direct-access requests.

Theorem 44 makes preprocessing cost an exact function of the query and
the variable order, which means a long-lived service can *plan*: many
orders induce the same disruption-free decomposition and can share one
``O(|D|^ι)`` preprocessing pass, and every query over one database can
share one dictionary encoding.  :class:`AccessSession` is that service
core:

* at construction it pins an execution engine and lets it pre-encode
  the database (shared-domain dictionary under numpy, warm sorted
  caches under Python);
* each :meth:`access` request reuses, in order of coarseness, the exact
  :class:`~repro.core.access.DirectAccess` structure, the counting
  forest, or the materialized bag relations of any earlier request
  whose decomposition matches — verified per request by the cache-stats
  counters;
* when no order is given, the request is planned through
  :mod:`repro.core.advisor`, optionally *cache-aware*: among orders
  whose exponent is within ``cache_slack`` of the optimum, one whose
  decomposition is already cached wins over a marginally cheaper cold
  one.

The session is thread-safe: one reentrant lock serializes planning,
cache mutation, and stats updates, and :meth:`AccessSession.cache_stats`
returns an atomic snapshot.  (The served structures themselves are
immutable after construction — apart from the engine op counters,
whose increments are internally locked — so concurrent *reads* of a
returned :class:`DirectAccess` need no coordination.)

This module is the engine room behind the public facade
(:func:`repro.connect` / :class:`repro.Connection`): prefer the facade
in application code.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from fractions import Fraction

from repro.core.access import DirectAccess
from repro.core.advisor import (
    OrderReport,
    rank_orders,
    rank_orders_with_prefix,
)
from repro.core.decomposition import DisruptionFreeDecomposition
from repro.core.preprocessing import Preprocessing
from repro.core import tasks
from repro.data.database import Database
from repro.engine.base import Engine
from repro.engine.registry import resolve_engine, use_engine
from repro.errors import OrderError
from repro.query.parser import parse_query
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder
from repro.session.cache import LRUCache, SessionStats


def _as_order(order) -> VariableOrder:
    if isinstance(order, VariableOrder):
        return order
    return VariableOrder(list(order))


class AccessSession:
    """Amortized direct access for repeated requests over one database.

    Args:
        database: the database served; owned by the session for its
            lifetime (the engine pre-encodes it in place).
        engine: execution engine (name, instance, or ``None`` for the
            process-global active engine); pinned for every request so
            cached artifacts are internally consistent.
        capacity: per-cache LRU capacity (``None`` = unbounded).
        cache_slack: how much preprocessing exponent the planner may
            give up for a warm cache: among candidate orders with
            ``ι ≤ ι_min + cache_slack``, an already-cached decomposition
            is preferred.  ``0`` (default) only breaks exact ties
            towards the cache; the asymptotic guarantee is unchanged.
    """

    #: Cache-aware planning inspects at most this many slack-window
    #: candidates per plan; beyond it (symmetric queries tie
    #: factorial-many orders) extra candidates add LP solves and memory
    #: but no real planning signal.
    PLAN_WINDOW = 16

    def __init__(
        self,
        database: Database,
        engine: str | Engine | None = None,
        capacity: int | None = 64,
        cache_slack: Fraction | int | float = 0,
    ):
        self.database = database
        self.engine = resolve_engine(engine)
        self.cache_slack = Fraction(cache_slack)
        self.stats = SessionStats()
        # Reentrant: access() -> plan() -> _ranked() all take it.  Cache
        # mutation, stats updates, and snapshots are serialized; the
        # returned DirectAccess structures are immutable and safe to
        # read concurrently without it.
        self._lock = threading.RLock()
        self._preprocessing_cache = LRUCache(
            capacity, self.stats.preprocessing
        )
        self._forest_cache = LRUCache(capacity, self.stats.forest)
        self._access_cache = LRUCache(capacity, self.stats.access)
        # Plans are trimmed to the slack window plan() inspects, so the
        # factorial tail of rank_orders is never retained.
        self._plans = LRUCache(capacity, self.stats.plans)
        # Decompositions per (query, order): warm requests must not
        # re-solve the per-bag fractional-cover LPs.
        self._decompositions = LRUCache(
            capacity, self.stats.decompositions
        )
        self.engine.encode_database(database)

    # -- planning ----------------------------------------------------------

    def _ranked(
        self, query: JoinQuery, prefix: VariableOrder | None
    ) -> list[OrderReport]:
        key = (
            query.signature(),
            tuple(prefix) if prefix is not None else None,
            # The stored list is trimmed to the slack window, so a
            # mutated cache_slack must miss and re-plan.
            self.cache_slack,
        )
        plan = self._plans.get(key)
        if plan is None:
            self.stats.advisor_calls += 1
            # limit streams via heapq.nsmallest: only PLAN_WINDOW
            # reports are ever retained, not the factorial ranking.
            ranked = (
                rank_orders(query, limit=self.PLAN_WINDOW)
                if prefix is None
                else rank_orders_with_prefix(
                    query, prefix, limit=self.PLAN_WINDOW
                )
            )
            # Keep only the candidates plan() can ever pick — those
            # within cache_slack of the optimum, capped at PLAN_WINDOW
            # (symmetric queries can tie factorial-many orders at the
            # optimum) — and attach their decompositions for key
            # lookups and cache-free serving.  The <= PLAN_WINDOW
            # rebuilds duplicate work _rank discarded, but next to the
            # factorial ranking itself that is noise, and it keeps the
            # advisor API free of a retain-decompositions mode.
            threshold = ranked[0].iota + max(self.cache_slack, 0)
            plan = [
                replace(
                    report,
                    decomposition=self._decomposition_for(
                        key[0], query, report.order
                    ),
                )
                for report in ranked
                if report.iota <= threshold
            ]
            self._plans.put(key, plan)
        return plan

    def _decomposition_for(
        self, signature, query: JoinQuery, order: VariableOrder
    ) -> DisruptionFreeDecomposition:
        key = (signature, tuple(order))
        decomposition = self._decompositions.get(key)
        if decomposition is None:
            decomposition = DisruptionFreeDecomposition(query, order)
            self._decompositions.put(key, decomposition)
        return decomposition

    def plan(
        self, query: JoinQuery, prefix: VariableOrder | None = None
    ) -> OrderReport:
        """The order the session would serve ``query`` with.

        The cheapest order by incompatibility number — except that among
        candidates within ``cache_slack`` of the optimum, one whose
        decomposition already sits in the session caches is preferred
        (its preprocessing is free).
        """
        if prefix is not None:
            prefix = _as_order(prefix)
        with self._lock:
            ranked = self._ranked(query, prefix)
            best = ranked[0]
            if self.cache_slack < 0:
                return best
            signature = query.signature()
            for report in ranked:
                if report.iota > best.iota + self.cache_slack:
                    break
                key = self._preprocessing_key(
                    signature, report.decomposition
                )
                if key in self._preprocessing_cache:
                    if report is not best:
                        self.stats.cache_preferred_orders += 1
                    return report
            return best

    # -- cache keys --------------------------------------------------------

    def _preprocessing_key(
        self, signature, decomposition: DisruptionFreeDecomposition
    ) -> tuple:
        return (
            signature,
            decomposition.cache_key(),
            self.engine.name,
        )

    # -- serving -----------------------------------------------------------

    def access(
        self,
        query: JoinQuery | str,
        order=None,
        prefix=None,
        projected: frozenset[str] | set[str] = frozenset(),
    ) -> DirectAccess:
        """A (possibly cached) :class:`DirectAccess` for the request.

        Args:
            query: a :class:`JoinQuery` or its textual form.
            order: the full variable order; ``None`` lets the advisor
                choose (cache-aware, see :meth:`plan`).
            prefix: with ``order=None``, a required order prefix — the
                advisor picks the cheapest completion (Definition 49).
            projected: variables to project away; must form a suffix of
                ``order`` (explicit orders only — the planner currently
                serves full join queries).
        """
        if isinstance(query, str):
            query = parse_query(query)
        projected = frozenset(projected)
        decomposition: DisruptionFreeDecomposition | None = None
        if prefix is not None:
            prefix = _as_order(prefix)  # normalize once: may be lazy
        if order is not None:
            order = _as_order(order)
            wanted = list(prefix) if prefix is not None else []
            if wanted and list(order)[: len(wanted)] != wanted:
                raise OrderError(
                    f"order {list(order)} does not start with the "
                    f"requested prefix {wanted}"
                )
        elif projected:
            raise OrderError(
                "projected access needs an explicit order (the "
                "planner serves full join queries)"
            )
        with self._lock:
            self.stats.requests += 1
            if order is None:
                report = self.plan(query, prefix)
                order = report.order
                decomposition = report.decomposition
            signature = query.signature()
            access_key = (signature, tuple(order), projected)
            access = self._access_cache.get(access_key)
            if access is not None:
                return access
            if decomposition is None:
                decomposition = self._decomposition_for(
                    signature, query, order
                )
            access = self._build(
                query, order, projected, decomposition, signature
            )
            self._access_cache.put(access_key, access)
            return access

    def _build(
        self,
        query: JoinQuery,
        order: VariableOrder,
        projected: frozenset[str],
        decomposition: DisruptionFreeDecomposition,
        signature,
    ) -> DirectAccess:
        preprocessing_key = self._preprocessing_key(
            signature, decomposition
        )
        forest_key = preprocessing_key + (projected,)
        with use_engine(self.engine):
            bag_tables = self._preprocessing_cache.get(
                preprocessing_key
            )
            preprocessing = Preprocessing(
                query,
                order,
                self.database,
                decomposition=decomposition,
                bag_tables=bag_tables,
            )
            if bag_tables is None:
                self.stats.bag_materializations += (
                    preprocessing.materialized_bag_count
                )
                self._preprocessing_cache.put(
                    preprocessing_key, preprocessing.bag_tables()
                )
            forest = self._forest_cache.get(forest_key)
            access = DirectAccess(
                query,
                order,
                self.database,
                projected,
                preprocessing=preprocessing,
                forest=forest,
            )
            if forest is None:
                self.stats.forest_builds += len(access.forest)
                self._forest_cache.put(forest_key, access.forest)
        return access

    # -- task-layer conveniences ------------------------------------------

    def count(self, query, order=None, prefix=None) -> int:
        """Number of answers (without enumerating them)."""
        return len(self.access(query, order=order, prefix=prefix))

    def median(self, query, order=None, prefix=None) -> tuple:
        """The middle answer under the served order."""
        return tasks.median_impl(
            self.access(query, order=order, prefix=prefix)
        )

    def page(
        self, query, page_number: int, page_size: int, order=None,
        prefix=None,
    ) -> list[tuple]:
        """One page of ranked answers (batched access)."""
        return tasks.page_impl(
            self.access(query, order=order, prefix=prefix),
            page_number,
            page_size,
        )

    def rank(self, query, row: tuple, order=None, prefix=None):
        """Inverse access: the index of ``row``, or ``None`` if no answer."""
        return self.access(
            query, order=order, prefix=prefix
        ).rank_of(row)

    # -- observability -----------------------------------------------------

    def cache_stats(self) -> dict:
        """An atomic snapshot of all cache and work counters (plain
        dicts, safe to read while other threads serve requests)."""
        with self._lock:
            return self.stats.as_dict()

    def clear(self) -> None:
        """Drop every cached artifact (counters are kept)."""
        with self._lock:
            self._preprocessing_cache.clear()
            self._forest_cache.clear()
            self._access_cache.clear()
            self._plans.clear()
            self._decompositions.clear()


__all__ = ["AccessSession"]
