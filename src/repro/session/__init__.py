"""Serving layer: amortized direct access across repeated requests.

:class:`AccessSession` owns a database, pins an execution engine, and
shares dictionary encodings, materialized bag relations, and counting
forests between every request that can legally reuse them (same
decomposition, same engine) — see :mod:`repro.session.session`.  It is
the engine room behind the public facade (:func:`repro.connect`).

:mod:`repro.session.artifacts` holds the shared read-only
:class:`ArtifactStore`: encoded database, bag tables, and counting
forests behind per-artifact build locks, fronted by cheap per-worker
sessions (the concurrency backbone of ``repro serve``).

:mod:`repro.session.protocol` defines the versioned, JSON-serializable
request/response shapes (:class:`SessionRequest` /
:class:`SessionResponse`) that every transport — the ``repro session``
CLI's text grammar, its ``--json`` mode, and the HTTP server
(:mod:`repro.server`) alike — funnels through one executor.
"""

from repro.session.artifacts import ArtifactStore, StoreStats
from repro.session.cache import (
    CacheStats,
    CostAwareCache,
    LRUCache,
    SessionStats,
)
from repro.session.mvcc import DEFAULT_RETAIN, SnapshotPlane
from repro.session.protocol import (
    PROTOCOL_VERSION,
    SessionRequest,
    SessionResponse,
)
from repro.session.session import AccessSession

__all__ = [
    "AccessSession",
    "ArtifactStore",
    "CacheStats",
    "CostAwareCache",
    "DEFAULT_RETAIN",
    "LRUCache",
    "PROTOCOL_VERSION",
    "SessionRequest",
    "SessionResponse",
    "SessionStats",
    "SnapshotPlane",
    "StoreStats",
]
