"""Serving layer: amortized direct access across repeated requests.

:class:`AccessSession` owns a database, pins an execution engine, and
shares dictionary encodings, materialized bag relations, and counting
forests between every request that can legally reuse them (same
decomposition, same engine) — see :mod:`repro.session.session`.
"""

from repro.session.cache import CacheStats, LRUCache, SessionStats
from repro.session.session import AccessSession

__all__ = ["AccessSession", "CacheStats", "LRUCache", "SessionStats"]
