"""Serving layer: amortized direct access across repeated requests.

:class:`AccessSession` owns a database, pins an execution engine, and
shares dictionary encodings, materialized bag relations, and counting
forests between every request that can legally reuse them (same
decomposition, same engine) — see :mod:`repro.session.session`.  It is
the engine room behind the public facade (:func:`repro.connect`).

:mod:`repro.session.protocol` defines the versioned, JSON-serializable
request/response shapes (:class:`SessionRequest` /
:class:`SessionResponse`) that every transport — the ``repro session``
CLI's text grammar and its ``--json`` mode alike — funnels through one
executor.
"""

from repro.session.cache import CacheStats, LRUCache, SessionStats
from repro.session.protocol import (
    PROTOCOL_VERSION,
    SessionRequest,
    SessionResponse,
)
from repro.session.session import AccessSession

__all__ = [
    "AccessSession",
    "CacheStats",
    "LRUCache",
    "PROTOCOL_VERSION",
    "SessionRequest",
    "SessionResponse",
    "SessionStats",
]
