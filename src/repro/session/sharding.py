"""Shard-by-code-range serving: partition one relation, merge by rank.

Lexicographic direct access composes over a *range partition* of the
leading variable: if every served order starts with variable ``x`` and
``x`` is bound at column ``c`` of a relation ``R`` that occurs exactly
once in the query, then splitting ``R`` into contiguous ``x``-ranges
splits the answer array itself into contiguous runs — shard ``k``
holds exactly the answers whose ``x`` falls in chunk ``k``, already in
global order.  The merge layer is therefore pure rank arithmetic:

* ``count``  — sum of shard counts;
* ``access`` — binary-search the prefix-count array for the owning
  shard, ask it for the *local* index;
* ``rank``   — route the tuple by its leading value, add the owning
  shard's prefix count to the local rank;
* ``median`` / ``page`` — the same index arithmetic the task kernels
  use (:mod:`repro.core.tasks`), re-done over global counts.

The merged results are **bit-identical** to unsharded serving (the
differential law in ``tests/test_sharding.py``), because chunks are
contiguous in the same plain ``<`` order the shared
:class:`~repro.data.columnar.Dictionary` sorts by, and each shard
serves its local answers in that order.

:class:`ShardedExecutor` is transport-agnostic — it fans out
:class:`~repro.session.protocol.SessionRequest` objects through a
``(shard_index, request) -> response dict`` callable, so the same
merge code runs over in-process connections
(:class:`LocalShardExecutor`, the differential-suite reference), over
the worker pool's shard-pinned processes
(:class:`~repro.server.router.ShardBackend`), and over remote
``repro serve`` replicas on other hosts
(:class:`~repro.server.client.HTTPShardExecutor`).  The
:class:`ShardExecutor` base class names that seam: subclass it (or
pass any bare callable) to put shards wherever you like.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import OrderError, QueryError
from repro.query.parser import parse_query
from repro.session.protocol import (
    PROTOCOL_VERSION,
    SessionRequest,
    SessionResponse,
)

#: Ops a sharded deployment can serve.  Mutations are excluded by
#: construction (a delta could move tuples across chunk boundaries, so
#: sharded serving is read-only), ``plan``/``db_version`` pass through
#: to shard 0, ``stats`` fans out.
SHARDABLE_OPS = frozenset(
    {"access", "count", "median", "page", "rank", "plan", "stats",
     "db_version", "quit"}
)


@dataclass(frozen=True)
class ShardPlan:
    """A fixed range partition of one relation's column.

    ``cuts`` holds the smallest value owned by each of shards
    ``1..shards-1`` (shard 0 owns everything below ``cuts[0]``), so
    routing a value is one :func:`bisect.bisect_right`.  The plan is
    picklable and travels to workers inside their
    :class:`~repro.server.worker.WorkerSpec`-adjacent config.
    """

    relation: str
    column: int
    variable: str
    cuts: tuple
    shards: int

    def shard_of(self, value) -> int:
        """The shard owning ``value`` of the leading variable."""
        return bisect_right(self.cuts, value)

    def describe(self) -> dict:
        return {
            "relation": self.relation,
            "column": self.column,
            "variable": self.variable,
            "shards": self.shards,
            "cuts": list(self.cuts),
        }


def plan_shards(
    database,
    query,
    shards: int,
    variable: str,
    relation: str | None = None,
) -> ShardPlan:
    """Choose and balance a range partition for ``variable``.

    The partitioned relation must bind ``variable`` and occur exactly
    once in the query (filtering one atom of a self-join would filter
    the other occurrence too).  Among the candidates, the largest
    relation is partitioned — that is where the counting forests are
    worth splitting.  Chunks are contiguous in plain ``<`` order over
    the column's distinct values and balanced by row count.
    """
    if shards < 1:
        raise QueryError(f"need at least one shard, got {shards}")
    if isinstance(query, str):
        query = parse_query(query)
    candidates = []  # (name, column)
    for atom in query.atoms:
        if variable in atom.variables:
            if relation is not None and atom.relation != relation:
                continue
            occurrences = sum(
                1 for a in query.atoms if a.relation == atom.relation
            )
            if occurrences != 1:
                continue
            candidates.append(
                (atom.relation, atom.variables.index(variable))
            )
    if not candidates:
        detail = (
            f" on relation {relation!r}" if relation is not None else ""
        )
        raise QueryError(
            f"no shardable atom binds variable {variable!r}{detail}: "
            f"the partitioned relation must bind the leading variable "
            f"and occur exactly once in the query"
        )
    name, column = max(
        candidates, key=lambda pair: len(database[pair[0]])
    )
    counts: dict = {}
    for row in database[name].sorted_tuples():
        value = row[column]
        counts[value] = counts.get(value, 0) + 1
    values = sorted(counts)
    total = sum(counts.values())
    cuts = []
    accumulated = 0
    position = 0
    for boundary in range(1, shards):
        target = total * boundary // shards
        while position < len(values) and accumulated < target:
            accumulated += counts[values[position]]
            position += 1
        if position < len(values):
            cuts.append(values[position])
        # fewer distinct values than shards: trailing shards stay
        # empty (no cut), which the router handles as count 0.
    return ShardPlan(
        relation=name,
        column=column,
        variable=variable,
        cuts=tuple(cuts),
        shards=max(len(cuts) + 1, shards) if cuts else shards,
    )


def shard_databases(database, plan: ShardPlan) -> list[dict]:
    """Materialize per-shard relation mappings.

    Shard ``k`` gets the partitioned relation filtered to its chunk
    and every other relation whole.  Returned as plain mappings so
    each worker (or in-process connection) builds its own encoded
    database over its subset.
    """
    out: list[dict] = []
    partitioned = [set() for _ in range(plan.shards)]
    for row in database[plan.relation].sorted_tuples():
        partitioned[plan.shard_of(row[plan.column])].add(row)
    whole = {
        name: set(rel.sorted_tuples())
        for name, rel in database.relations.items()
        if name != plan.relation
    }
    for index in range(plan.shards):
        mapping = dict(whole)
        mapping[plan.relation] = partitioned[index]
        out.append(mapping)
    return out


def _error(request: SessionRequest, error: Exception) -> dict:
    return SessionResponse(
        op=request.op,
        ok=False,
        error=str(error),
        error_type=type(error).__name__,
    ).to_dict()


class ShardedExecutor:
    """Fan one request out over shard executors; merge by rank.

    ``execute_fn(index, request) -> response dict`` is the only
    coupling to a transport.  Count vectors are cached per
    ``(query, order)`` — sharded serving is read-only, so counts can
    never go stale.
    """

    def __init__(
        self,
        plan: ShardPlan,
        execute_fn,
        default_query: str | None = None,
    ):
        self.plan = plan
        self._execute = execute_fn
        self._default_query = default_query
        self._counts_lock = threading.Lock()
        self._counts: dict = {}

    # -- plumbing ----------------------------------------------------------

    def _fan(self, request: SessionRequest, indexes=None) -> list[dict]:
        """The same request on every shard (or ``indexes``); raises the
        first shard error as a ready-to-return response via
        :class:`_ShardFailure`."""
        replies = []
        for index in indexes if indexes is not None else range(
            self.plan.shards
        ):
            reply = self._execute(index, request)
            if not reply.get("ok"):
                raise _ShardFailure(reply, request.op)
            replies.append(reply)
        return replies

    def _cums(self, request: SessionRequest):
        """Per-shard prefix counts for the request's (query, order)."""
        cache_key = (request.query, request.order)
        with self._counts_lock:
            cached = self._counts.get(cache_key)
        if cached is not None:
            return cached
        count_request = SessionRequest(
            op="count",
            query=request.query,
            order=request.order,
            db_version=request.db_version,
        )
        replies = self._fan(count_request)
        counts = [reply["result"]["count"] for reply in replies]
        served = replies[0]["result"]
        cums = [0]
        for count in counts:
            cums.append(cums[-1] + count)
        entry = (
            cums,
            {
                "order": served["order"],
                **(
                    {"db_version": served["db_version"]}
                    if "db_version" in served
                    else {}
                ),
            },
        )
        with self._counts_lock:
            self._counts[cache_key] = entry
        return entry

    def _answers_at(
        self, request: SessionRequest, positions: list[int]
    ) -> list[list]:
        """Global ``positions`` (validated, non-negative) resolved by
        per-shard batch access, merged back into request order."""
        cums, _served = self._cums(request)
        by_shard: dict[int, list[tuple[int, int]]] = {}
        for slot, position in enumerate(positions):
            shard = bisect_right(cums, position) - 1
            shard = min(shard, self.plan.shards - 1)
            by_shard.setdefault(shard, []).append(
                (slot, position - cums[shard])
            )
        out: list = [None] * len(positions)
        for shard, pairs in by_shard.items():
            shard_request = SessionRequest(
                op="access",
                query=request.query,
                order=request.order,
                indices=tuple(local for _slot, local in pairs),
                db_version=request.db_version,
            )
            reply = self._fan(shard_request, indexes=(shard,))[0]
            answers = reply["result"]["answers"]
            for (slot, _local), answer in zip(pairs, answers):
                out[slot] = answer
        return out

    # -- the merged executor ----------------------------------------------

    def execute(self, request: SessionRequest) -> dict:
        """Serve ``request`` over the shards; a response dict with the
        same shape, values, and error types as unsharded
        :func:`~repro.session.protocol.execute`."""
        from repro.errors import (
            OutOfBoundsError,
            ProtocolError,
            ReadOnlyError,
            ReproError,
        )

        op = request.op
        if request.query is None and self._default_query is not None:
            request = SessionRequest(
                **{
                    **{
                        f: getattr(request, f)
                        for f in request.__dataclass_fields__
                    },
                    "query": self._default_query,
                }
            )
        try:
            if request.version > PROTOCOL_VERSION:
                raise ProtocolError(
                    f"request speaks protocol {request.version}, this "
                    f"server speaks {PROTOCOL_VERSION}"
                )
            if op in ("insert", "delete"):
                raise ReadOnlyError(
                    "sharded serving is read-only: a delta could move "
                    "tuples across shard boundaries"
                )
            if op == "quit":
                return SessionResponse(op=op, ok=True).to_dict()
            if op == "stats":
                replies = self._fan(request)
                return SessionResponse(
                    op=op,
                    ok=True,
                    result={
                        "sharded": self.plan.describe(),
                        "shards": [r["result"] for r in replies],
                    },
                ).to_dict()
            if op in ("plan", "db_version"):
                return self._fan(request, indexes=(0,))[0]
            if op not in SHARDABLE_OPS:
                raise ProtocolError(
                    f"unknown command {op!r} (try 'help')"
                )
            # view ops from here on
            if (
                request.order is None
                or request.order[0] != self.plan.variable
            ):
                raise OrderError(
                    f"sharded serving partitions variable "
                    f"{self.plan.variable!r}: every order must start "
                    f"with it (got {request.order!r})"
                )
            cums, served = self._cums(request)
            total = cums[-1]
            if op == "count":
                return SessionResponse(
                    op=op, ok=True, result=dict(served, count=total)
                ).to_dict()
            if op == "median":
                if total == 0:
                    raise OutOfBoundsError(
                        "no answers: quantiles undefined"
                    )
                answer = self._answers_at(request, [(total - 1) // 2])[0]
                return SessionResponse(
                    op=op, ok=True, result=dict(served, answer=answer)
                ).to_dict()
            if op == "access":
                if not request.indices:
                    raise ProtocolError(
                        "access needs at least one index"
                    )
                positions = []
                for index in request.indices:
                    position = index + total if index < 0 else index
                    if not 0 <= position < total:
                        raise OutOfBoundsError(
                            f"index {index} out of range "
                            f"[-{total}, {total})"
                        )
                    positions.append(position)
                answers = self._answers_at(request, positions)
                return SessionResponse(
                    op=op,
                    ok=True,
                    result=dict(
                        served,
                        indices=list(request.indices),
                        answers=answers,
                    ),
                ).to_dict()
            if op == "page":
                number, size = request.page_number, request.page_size
                if number is None or size is None:
                    raise ProtocolError(
                        "page needs page_number and page_size"
                    )
                if number < 0:
                    raise OutOfBoundsError(
                        f"page number must be non-negative, "
                        f"got {number}"
                    )
                if size <= 0:
                    raise OutOfBoundsError(
                        f"page size must be positive, got {size}"
                    )
                start = number * size
                stop = min(start + size, total)
                positions = list(range(start, stop))
                answers = (
                    self._answers_at(request, positions)
                    if positions
                    else []
                )
                return SessionResponse(
                    op=op,
                    ok=True,
                    result=dict(
                        served,
                        page_number=number,
                        page_size=size,
                        answers=answers,
                    ),
                ).to_dict()
            if op == "rank":
                rows = (
                    [list(row) for row in request.answers]
                    if request.answers is not None
                    else None
                )
                if rows is None:
                    if request.answer is None:
                        raise ProtocolError(
                            "rank needs an answer tuple"
                        )
                    ranks = self._ranks(
                        request, [list(request.answer)], cums
                    )
                    return SessionResponse(
                        op=op,
                        ok=True,
                        result=dict(
                            served,
                            answer=list(request.answer),
                            rank=ranks[0],
                        ),
                    ).to_dict()
                ranks = self._ranks(request, rows, cums)
                return SessionResponse(
                    op=op,
                    ok=True,
                    result=dict(served, answers=rows, ranks=ranks),
                ).to_dict()
            raise ProtocolError(
                f"unknown command {op!r} (try 'help')"
            )  # pragma: no cover - SHARDABLE_OPS is exhaustive
        except _ShardFailure as failure:
            return failure.reply
        except (ReproError, ValueError) as error:
            return _error(request, error)

    def _ranks(
        self, request: SessionRequest, rows: list[list], cums
    ) -> list:
        by_shard: dict[int, list[int]] = {}
        for slot, row in enumerate(rows):
            if not row:
                continue
            shard = min(
                self.plan.shard_of(row[0]), self.plan.shards - 1
            )
            by_shard.setdefault(shard, []).append(slot)
        ranks: list = [None] * len(rows)
        for shard, slots in by_shard.items():
            shard_request = SessionRequest(
                op="rank",
                query=request.query,
                order=request.order,
                answers=tuple(tuple(rows[slot]) for slot in slots),
                db_version=request.db_version,
            )
            reply = self._fan(shard_request, indexes=(shard,))[0]
            for slot, local in zip(slots, reply["result"]["ranks"]):
                ranks[slot] = (
                    None if local is None else local + cums[shard]
                )
        return ranks


class _ShardFailure(Exception):
    """A shard answered ``ok=False``; surface its response verbatim
    (same error type and message a single-node server would send)."""

    def __init__(self, reply: dict, op: str):
        super().__init__(reply.get("error"))
        self.reply = dict(reply, op=op)


class ShardExecutor:
    """The transport seam of sharded serving.

    One method: :meth:`execute` takes ``(shard_index, request)`` and
    returns the shard's :class:`~repro.session.SessionResponse` *as a
    dict* — exactly what single-node
    :func:`~repro.session.protocol.execute` would produce for that
    shard's database.  Where the shard lives (an in-process
    connection, a worker process, a server on another host) is the
    subclass's business; the merge math in :class:`ShardedExecutor`
    never changes.  Instances are callable, so plain
    ``execute_fn(index, request)`` functions and executor objects are
    interchangeable.
    """

    def execute(self, index: int, request: SessionRequest) -> dict:
        raise NotImplementedError

    def __call__(self, index: int, request: SessionRequest) -> dict:
        return self.execute(index, request)

    def close(self) -> None:
        """Release transport resources (sockets, connections)."""


class LocalShardExecutor(ShardExecutor):
    """In-process shards: one :func:`repro.connect` per shard mapping.

    The reference executor the differential suite compares every other
    transport against — whatever answers these connections give *is*
    the specification of sharded serving.
    """

    def __init__(self, databases: list[dict], engine: str):
        from repro.facade import connect

        self._connections = [
            connect(mapping, engine=engine) for mapping in databases
        ]

    def execute(self, index: int, request: SessionRequest) -> dict:
        from repro.session.protocol import execute

        return execute(self._connections[index], request).to_dict()

    def close(self) -> None:
        self._connections = []


def local_shard_executor(
    databases: list[dict], engine: str
) -> LocalShardExecutor:
    """An in-process ``execute_fn`` over per-shard connections — the
    reference the differential suite compares the router against.
    (Kept as a function for existing callers; the returned executor is
    callable like the closure it used to be.)"""
    return LocalShardExecutor(databases, engine)


__all__ = [
    "SHARDABLE_OPS",
    "LocalShardExecutor",
    "ShardExecutor",
    "ShardPlan",
    "ShardedExecutor",
    "local_shard_executor",
    "plan_shards",
    "shard_databases",
]
