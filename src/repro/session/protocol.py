"""The session wire protocol: versioned, JSON-serializable requests.

One request/response shape shared by every transport: the ``repro
session`` CLI parses its legacy text grammar *and* its ``--json`` mode
into the same :class:`SessionRequest`, and a single executor
(:func:`execute`) serves both against a facade
:class:`~repro.facade.Connection` — there is exactly one codepath from
a request to an answer.

The protocol is versioned (:data:`PROTOCOL_VERSION`): requests carry
the version they speak, a server rejects versions newer than its own
with a clean error response, and responses echo the version so clients
can do the same.  All payloads are plain JSON types (tuples become
lists on the wire).

    >>> from repro.session.protocol import SessionRequest
    >>> request = SessionRequest(op="access", order=("x", "y"), indices=(0, -1))
    >>> SessionRequest.from_json(request.to_json()) == request
    True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

from repro.data.io import parse_cell
from repro.errors import ProtocolError, ReproError

#: Version of the request/response shapes this module speaks.
#: Version 2 added live mutations (``insert`` / ``delete`` /
#: ``db_version`` ops, the ``db_version`` staleness pin on read ops)
#: and batched inverse access (``answers`` on ``rank``).  Version 3
#: added the atomic multi-relation ``apply`` op (``inserts`` /
#: ``deletes`` request fields, one version bump for the whole delta)
#: and MVCC pin semantics: a read op pinned to a retained
#: ``db_version`` is *served from that snapshot* instead of raising
#: ``StaleViewError`` — the error remains for evicted versions.
PROTOCOL_VERSION = 3

#: Operations a server understands.  ``quit`` is included so clients can
#: end a stream in-band; transports decide what to do after its ack.
OPS = frozenset(
    {
        "access",
        "apply",
        "count",
        "db_version",
        "delete",
        "insert",
        "median",
        "page",
        "plan",
        "rank",
        "stats",
        "quit",
    }
)

#: Ops that serve a prepared view and therefore honour the request's
#: ``db_version`` pin (served from that MVCC snapshot while retained).
VIEW_OPS = frozenset({"access", "count", "median", "page", "rank"})

#: Ops that mutate the served database (refused on read-only servers;
#: routed to the supervisor under process sharding).
MUTATION_OPS = frozenset({"apply", "delete", "insert"})

#: One-line summary per op — the machine-checkable core of
#: ``docs/protocol.md`` (the sync test diffs the doc against this and
#: against :data:`OPS`, so neither can rot).
OP_SUMMARIES = {
    "access": "answer tuples at the given indices (batch direct access)",
    "apply": "apply a multi-relation delta atomically (one version bump)",
    "count": "the number of answers, never enumerated",
    "db_version": "the served database's current version",
    "delete": "remove rows from one relation (bumps db_version)",
    "insert": "add rows to one relation (bumps db_version)",
    "median": "the middle answer under the served order",
    "page": "one page of ranked answers (page_number, page_size)",
    "plan": "the order the cache-aware advisor would serve with",
    "rank": "inverse access: the index of an answer tuple, or null",
    "stats": "per-worker session counters and shared-store stats",
    "quit": "end an in-band stream (transports decide what follows)",
}
assert set(OP_SUMMARIES) == OPS


def _string_tuple(value, name: str) -> tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ProtocolError(f"{name} must be a list of variable names")
    return tuple(value)


@dataclass(frozen=True)
class SessionRequest:
    """One serving request, independent of transport.

    ``query`` is optional: the CLI session binds one query for its whole
    lifetime and fills it in, but a standalone client may send it per
    request.  ``order=None`` lets the cache-aware planner choose.
    """

    op: str
    query: str | None = None
    order: tuple[str, ...] | None = None
    prefix: tuple[str, ...] | None = None
    indices: tuple[int, ...] = ()
    page_number: int | None = None
    page_size: int | None = None
    answer: tuple | None = None
    answers: tuple[tuple, ...] | None = None
    relation: str | None = None
    rows: tuple[tuple, ...] | None = None
    inserts: dict | None = None
    deletes: dict | None = None
    db_version: int | None = None
    version: int = PROTOCOL_VERSION

    def __post_init__(self):
        if self.op not in OPS:
            raise ProtocolError(
                f"unknown command {self.op!r} (try 'help')"
            )

    # -- wire form ---------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-ready form (defaults omitted, tuples as lists)."""
        out: dict = {"version": self.version, "op": self.op}
        if self.query is not None:
            out["query"] = self.query
        if self.order is not None:
            out["order"] = list(self.order)
        if self.prefix is not None:
            out["prefix"] = list(self.prefix)
        if self.indices:
            out["indices"] = list(self.indices)
        if self.page_number is not None:
            out["page_number"] = self.page_number
        if self.page_size is not None:
            out["page_size"] = self.page_size
        if self.answer is not None:
            out["answer"] = list(self.answer)
        if self.answers is not None:
            out["answers"] = [list(row) for row in self.answers]
        if self.relation is not None:
            out["relation"] = self.relation
        if self.rows is not None:
            out["rows"] = [list(row) for row in self.rows]
        for name, side in (
            ("inserts", self.inserts),
            ("deletes", self.deletes),
        ):
            if side is not None:
                out[name] = {
                    relation: [list(row) for row in rows]
                    for relation, rows in side.items()
                }
        if self.db_version is not None:
            out["db_version"] = self.db_version
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data) -> "SessionRequest":
        if not isinstance(data, dict):
            raise ProtocolError("request must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ProtocolError(
                f"unknown request fields: {sorted(unknown)}"
            )
        version = data.get("version", PROTOCOL_VERSION)
        if not isinstance(version, int) or isinstance(version, bool):
            raise ProtocolError("version must be an integer")
        if version > PROTOCOL_VERSION:
            raise ProtocolError(
                f"request speaks protocol {version}, this server "
                f"speaks {PROTOCOL_VERSION}"
            )
        op = data.get("op")
        if not isinstance(op, str):
            raise ProtocolError("request needs a string 'op'")
        query = data.get("query")
        if query is not None and not isinstance(query, str):
            raise ProtocolError("query must be a string")
        order = data.get("order")
        if order is not None:
            order = _string_tuple(order, "order")
        prefix = data.get("prefix")
        if prefix is not None:
            prefix = _string_tuple(prefix, "prefix")
        indices = data.get("indices", ())
        if not isinstance(indices, (list, tuple)) or not all(
            isinstance(i, int) and not isinstance(i, bool)
            for i in indices
        ):
            raise ProtocolError("indices must be a list of integers")
        answer = data.get("answer")
        if answer is not None:
            if not isinstance(answer, (list, tuple)):
                raise ProtocolError("answer must be a list of values")
            answer = tuple(answer)

        def row_batch(name: str):
            value = data.get(name)
            if value is None:
                return None
            if not isinstance(value, (list, tuple)) or not all(
                isinstance(row, (list, tuple)) for row in value
            ):
                raise ProtocolError(
                    f"{name} must be a list of rows (lists of values)"
                )
            return tuple(tuple(row) for row in value)

        answers = row_batch("answers")
        rows = row_batch("rows")

        def delta_side(name: str):
            value = data.get(name)
            if value is None:
                return None
            if not isinstance(value, dict) or not all(
                isinstance(relation, str)
                and isinstance(side_rows, (list, tuple))
                and all(
                    isinstance(row, (list, tuple)) for row in side_rows
                )
                for relation, side_rows in value.items()
            ):
                raise ProtocolError(
                    f"{name} must map relation names to lists of rows"
                )
            return {
                relation: tuple(tuple(row) for row in side_rows)
                for relation, side_rows in value.items()
            }

        inserts = delta_side("inserts")
        deletes = delta_side("deletes")
        relation = data.get("relation")
        if relation is not None and not isinstance(relation, str):
            raise ProtocolError("relation must be a string")
        page_number = data.get("page_number")
        page_size = data.get("page_size")
        db_version = data.get("db_version")
        for name, value in (
            ("page_number", page_number),
            ("page_size", page_size),
            ("db_version", db_version),
        ):
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ProtocolError(f"{name} must be an integer")
        return cls(
            op=op,
            query=query,
            order=order,
            prefix=prefix,
            indices=tuple(indices),
            page_number=page_number,
            page_size=page_size,
            answer=answer,
            answers=answers,
            relation=relation,
            rows=rows,
            inserts=inserts,
            deletes=deletes,
            db_version=db_version,
            version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "SessionRequest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"bad JSON request: {error}") from None
        return cls.from_dict(data)


@dataclass(frozen=True)
class SessionResponse:
    """The answer to one :class:`SessionRequest`.

    ``ok`` distinguishes served results from request errors; a failed
    request carries the error message in ``error`` and ``result=None``,
    plus the library's exception class name in ``error_type`` (e.g.
    ``"OutOfBoundsError"``) so remote clients can re-raise the same
    exception a local call would have raised.  ``result`` holds only
    JSON types — answer tuples arrive as lists.
    """

    op: str
    ok: bool
    result: object = None
    error: str | None = None
    error_type: str | None = None
    version: int = PROTOCOL_VERSION

    def to_dict(self) -> dict:
        out: dict = {
            "version": self.version,
            "op": self.op,
            "ok": self.ok,
        }
        if self.ok:
            out["result"] = self.result
        else:
            out["error"] = self.error
            if self.error_type is not None:
                out["error_type"] = self.error_type
        return out

    def to_json(self) -> str:
        # default=str keeps exotic (non-JSON) constants printable
        # instead of failing the whole response.
        return json.dumps(self.to_dict(), default=str)

    @classmethod
    def from_dict(cls, data) -> "SessionResponse":
        if not isinstance(data, dict):
            raise ProtocolError("response must be a JSON object")
        version = data.get("version", PROTOCOL_VERSION)
        if not isinstance(version, int) or version > PROTOCOL_VERSION:
            raise ProtocolError(
                f"response speaks protocol {version!r}, this client "
                f"speaks {PROTOCOL_VERSION}"
            )
        op = data.get("op")
        ok = data.get("ok")
        if not isinstance(op, str) or not isinstance(ok, bool):
            raise ProtocolError(
                "response needs a string 'op' and boolean 'ok'"
            )
        return cls(
            op=op,
            ok=ok,
            result=data.get("result"),
            error=data.get("error"),
            error_type=data.get("error_type"),
            version=version,
        )

    @classmethod
    def from_json(cls, text: str) -> "SessionResponse":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"bad JSON response: {error}") from None
        return cls.from_dict(data)


# -- the legacy text grammar ----------------------------------------------


def parse_command(line: str) -> SessionRequest:
    """One line of the ``repro session`` text grammar, as a request.

    Raises :class:`~repro.errors.ProtocolError` on malformed or unknown
    commands; blank lines, comments, and ``help`` are transport
    concerns and never reach this parser.
    """
    words = line.split()
    if not words:
        raise ProtocolError("empty command")
    command, rest = words[0].lower(), words[1:]

    def order_of(token: str):
        if token == "-":
            return None
        return tuple(v.strip() for v in token.split(","))

    def rows_of(tokens) -> tuple[tuple, ...]:
        if not tokens:
            raise ProtocolError("need at least one row (v1,v2,...)")
        return tuple(
            tuple(parse_cell(cell) for cell in token.split(","))
            for token in tokens
        )

    try:
        if command in ("quit", "exit"):  # repro: noqa[REG-OPS] -- text-grammar alias of quit; OPS registers canonical ops only
            return SessionRequest(op="quit")
        if command == "stats":
            return SessionRequest(op="stats")
        if command == "db_version":
            return SessionRequest(op="db_version")
        if command in ("insert", "delete"):
            relation, *row_tokens = rest
            return SessionRequest(
                op=command,
                relation=relation,
                rows=rows_of(row_tokens),
            )
        if command == "plan":
            prefix = order_of(rest[0]) if rest else None
            return SessionRequest(op="plan", prefix=prefix)
        if command == "count":
            (order_token,) = rest
            return SessionRequest(
                op="count", order=order_of(order_token)
            )
        if command == "median":
            (order_token,) = rest
            return SessionRequest(
                op="median", order=order_of(order_token)
            )
        if command == "access":
            order_token, *index_tokens = rest
            if not index_tokens:
                raise ProtocolError("access needs at least one index")
            return SessionRequest(
                op="access",
                order=order_of(order_token),
                indices=tuple(int(token) for token in index_tokens),
            )
        if command == "page":
            order_token, number, size = rest
            return SessionRequest(
                op="page",
                order=order_of(order_token),
                page_number=int(number),
                page_size=int(size),
            )
        if command == "rank":
            order_token, answer_token = rest
            return SessionRequest(
                op="rank",
                order=order_of(order_token),
                answer=tuple(
                    parse_cell(cell)
                    for cell in answer_token.split(",")
                ),
            )
    except ProtocolError:
        raise
    except ValueError as error:
        raise ProtocolError(str(error)) from None
    raise ProtocolError(f"unknown command {command!r} (try 'help')")


# -- the one executor ------------------------------------------------------


def delta_from_request(request: SessionRequest):
    """The :class:`~repro.data.delta.Delta` a mutation request names.

    Shared by :func:`execute` and the process-sharding router so both
    transports validate (and apply) exactly the same delta.  Raises
    :class:`~repro.errors.ProtocolError` on malformed requests.
    """
    from repro.data.delta import Delta

    op = request.op
    if op in ("insert", "delete"):
        if request.relation is None or request.rows is None:
            raise ProtocolError(
                f"{op} needs a relation and a list of rows"
            )
        side = "inserts" if op == "insert" else "deletes"
        return Delta(**{side: {request.relation: request.rows}})
    if op == "apply":
        if request.inserts is None and request.deletes is None:
            raise ProtocolError(
                "apply needs inserts and/or deletes "
                "(relation -> rows mappings)"
            )
        return Delta(
            inserts=request.inserts or {},
            deletes=request.deletes or {},
        )
    raise ProtocolError(f"{op!r} is not a mutation op")


def mutation_result(
    request: SessionRequest, delta, db_version: int
) -> dict:
    """The wire result for a served mutation (shape depends on op:
    single-relation ops keep their v2 ``relation``/``rows`` form,
    ``apply`` reports every touched relation and the delta size)."""
    if request.op in ("insert", "delete"):
        return {
            "relation": request.relation,
            "rows": len(request.rows),
            "db_version": db_version,
        }
    return {
        "relations": sorted(delta.touched),
        "rows": delta.size(),
        "db_version": db_version,
    }


def execute(
    connection, request: SessionRequest, default_query=None
) -> SessionResponse:
    """Serve ``request`` against a facade ``Connection``.

    Every transport (text CLI, JSON lines, tests) funnels through here.
    ``default_query`` backs requests that carry no query of their own
    (the CLI session's bound query).  Library errors come back as
    ``ok=False`` responses — the serving loop never dies on a bad
    request.
    """

    def respond(result) -> SessionResponse:
        return SessionResponse(op=request.op, ok=True, result=result)

    try:
        if request.version > PROTOCOL_VERSION:
            raise ProtocolError(
                f"request speaks protocol {request.version}, this "
                f"server speaks {PROTOCOL_VERSION}"
            )
        op = request.op
        if op == "quit":
            return respond(None)
        if op == "stats":
            return respond(connection.stats())
        if op == "db_version":
            return respond({"db_version": connection.db_version})
        if op in MUTATION_OPS:
            delta = delta_from_request(request)
            new_version = connection.apply(delta)
            return respond(
                mutation_result(request, delta, new_version)
            )
        query = (
            request.query if request.query is not None else default_query
        )
        if query is None:
            raise ProtocolError(f"{op} needs a query")
        if op == "plan":
            report = connection.plan(query, prefix=request.prefix)
            return respond(
                {
                    "order": list(report.order),
                    "iota": str(report.iota),
                }
            )
        # A db_version pin on a view op means "serve from that MVCC
        # snapshot": while the version is retained the client gets
        # exactly the answers its view was prepared over; once it is
        # evicted, prepare raises the same structured StaleViewError a
        # local stale view raises.
        at_version = (
            request.db_version
            if op in VIEW_OPS
            and request.db_version is not None
            and request.db_version != connection.db_version
            else None
        )
        view = connection.prepare(
            query,
            order=request.order,
            prefix=request.prefix,
            at_version=at_version,
        )
        served = {"order": list(view.order)}
        if view.db_version is not None:
            served["db_version"] = view.db_version
        if op == "count":
            return respond(dict(served, count=len(view)))
        if op == "median":
            return respond(dict(served, answer=list(view.median())))
        if op == "access":
            if not request.indices:
                raise ProtocolError("access needs at least one index")
            answers = view.tuples_at(request.indices)
            return respond(
                dict(
                    served,
                    indices=list(request.indices),
                    answers=[list(answer) for answer in answers],
                )
            )
        if op == "page":
            if request.page_number is None or request.page_size is None:
                raise ProtocolError(
                    "page needs page_number and page_size"
                )
            answers = view.page(request.page_number, request.page_size)
            return respond(
                dict(
                    served,
                    page_number=request.page_number,
                    page_size=request.page_size,
                    answers=[list(answer) for answer in answers],
                )
            )
        if op == "rank":
            if request.answers is not None:
                # Batch form: one wire op ranks many tuples (the HTTP
                # client's RemoteAnswerView.ranks rides this).
                ranks = view.ranks(
                    [tuple(row) for row in request.answers]
                )
                return respond(
                    dict(
                        served,
                        answers=[list(row) for row in request.answers],
                        ranks=ranks,
                    )
                )
            if request.answer is None:
                raise ProtocolError("rank needs an answer tuple")
            rank = view.ranks([tuple(request.answer)])[0]
            return respond(
                dict(
                    served,
                    answer=list(request.answer),
                    rank=rank,
                )
            )
        raise ProtocolError(f"unknown command {op!r} (try 'help')")
    except (ReproError, ValueError) as error:
        return SessionResponse(
            op=request.op,
            ok=False,
            error=str(error),
            error_type=type(error).__name__,
        )
    except TypeError as error:
        # Order-sensitive structures need a totally ordered domain; a
        # database mixing incomparable constants in one column surfaces
        # as a TypeError deep in preprocessing.  A serving loop must
        # answer that with an error response, not die with a traceback.
        return SessionResponse(
            op=request.op,
            ok=False,
            error=f"domain not totally ordered: {error}",
            error_type="TypeError",
        )


__all__ = [
    "MUTATION_OPS",
    "OPS",
    "OP_SUMMARIES",
    "PROTOCOL_VERSION",
    "VIEW_OPS",
    "SessionRequest",
    "SessionResponse",
    "delta_from_request",
    "execute",
    "mutation_result",
    "parse_command",
]
