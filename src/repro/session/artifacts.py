"""The shared read-only artifact store behind per-worker sessions.

PR 3 made :class:`~repro.session.AccessSession` thread-safe with one
reentrant lock — correct, but it serializes *whole requests*: while one
thread pays an ``O(|D|^ι)`` preprocessing pass, every other thread
waits, even those asking for artifacts that already exist or for a
*different* decomposition.  For a serving process (``repro serve``)
that is the difference between N workers and one.

:class:`ArtifactStore` splits that lock three ways:

* a **registry lock** — held only for dictionary lookups, cache
  insertion, and stats updates (microseconds, never across tuple
  work);
* **per-artifact build locks** — one lock per cache key, created on
  demand, held across the actual build.  Two workers requesting the
  *same* cold artifact serialize on its key (the second finds it warm:
  one preprocessing pass total); two workers requesting *different*
  decompositions build concurrently;
* no lock at all for serving — the cached structures
  (:class:`~repro.core.access.DirectAccess`, counting forests, bag
  tables) are immutable after construction, so reads need no
  coordination.

Artifacts are keyed by
:meth:`~repro.core.decomposition.DisruptionFreeDecomposition.cache_key`
(canonical across every order inducing the same decomposition) and
evicted cost-aware: each entry remembers its decomposition exponent
``ι``, and overflow sacrifices the cheapest-to-rebuild entry first
(:class:`~repro.session.cache.CostAwareCache`), not the least recent.

The store is **versioned and multi-version** (MVCC): every artifact is
registered under ``(db_version, cache_key)``, and
:meth:`ArtifactStore.apply` applies a
:class:`~repro.data.delta.Delta`, bumps the version, and walks the
caches once — artifacts whose declared relation dependencies are
disjoint from the delta's touched relations are *carried* to the new
version (``artifacts_carried``), the rest stop serving the head
(``artifacts_invalidated``).  A decomposition that never touches a
mutated relation therefore keeps serving from cache across mutations,
with zero rebuilds — the generation counters in :meth:`cache_stats`
prove it.  In-flight builds that captured the old version finish
harmlessly: their artifact lands under the old version's key, is never
served to new-version readers, and is garbage-collected with that
version.

History does not vanish on apply: a
:class:`~repro.session.mvcc.SnapshotPlane` retains the last K
``(db_version, database)`` snapshots with per-version refcounts, so a
version-pinned view **keeps serving its snapshot** while new requests
see the head (:meth:`database_at` resolves any retained version, and
reads at it rebuild against the retained database when needed).
Head-invalidated artifacts are kept under their old version while that
version has open views (``artifacts_retained``) and garbage-collected
when its last view closes or the version leaves the window
(``artifacts_gcd``).  :class:`~repro.errors.StaleViewError` survives
only as the opt-in ``strict_views`` mode plus the fallback for reads
of an *evicted* snapshot.

With a :class:`~repro.data.wal.WriteAheadLog` attached (``wal=``),
every effective delta is appended — checksummed and fsynced — *before*
the in-memory apply, so a crash between append and apply is repaired
by replay-on-boot, and ``repro serve --wal`` restarts warm and
current.  An *effectively empty* delta (every insert already present,
every delete already absent) is a no-op: no version bump, no log
record, no invalidation (``noop_deltas``).

One store fronts many cheap :class:`~repro.session.AccessSession`
objects — one per server worker — each keeping its own request/plan
counters while the artifact caches, and the once-per-database encoded
dictionary, are shared:

    >>> from repro.session.artifacts import ArtifactStore
    >>> store = ArtifactStore({"R": {(1, 2), (3, 2)}, "S": {(2, 7)}})
    >>> worker_a, worker_b = store.session(), store.session()
    >>> len(worker_a.access("Q(x, y, z) :- R(x, y), S(y, z)",
    ...                     order=["x", "y", "z"]))
    2
    >>> len(worker_b.access("Q(x, y, z) :- R(x, y), S(y, z)",
    ...                     order=["x", "z", "y"]))    # warm sibling?
    2
    >>> store.stats.database_encodes     # encoded once, not per worker
    1
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.data.database import Database
from repro.engine.base import Engine
from repro.engine.registry import resolve_engine
from repro.errors import StaleViewError
from repro.session.cache import CacheStats, CostAwareCache
from repro.session.mvcc import DEFAULT_RETAIN, SnapshotPlane

#: Sentinel for "dependencies unknown": artifacts registered without a
#: ``relations`` declaration are dropped by *every* delta — the safe
#: default for direct store users.  Pass a ``frozenset`` of relation
#: names for selective invalidation, or ``None`` for data-independent
#: artifacts that survive all deltas.
DEPENDS_ON_ALL = object()


@dataclass
class StoreStats:
    """Aggregate counters for one :class:`ArtifactStore`.

    The per-kind :class:`CacheStats` aggregate over *all* attached
    sessions (each session additionally keeps its own).  The build
    counters are the serving-layer acceptance evidence:

    * ``database_encodes`` — how many times the engine actually encoded
      the database; stays 1 no matter how many workers attach;
    * ``artifact_builds`` — builds that really ran (a worker that waited
      on another worker's in-flight build does not count);
    * ``build_waits`` — times a worker blocked on a per-artifact lock
      and then found the artifact warm (the de-duplication at work);
    * ``build_concurrency_peak`` — the high-water mark of builds running
      *simultaneously*; ``>= 2`` proves two artifacts were built under
      different locks, which a single session-wide lock can never show.

    The mutation (generation) counters are the incremental-maintenance
    acceptance evidence:

    * ``deltas_applied`` — database versions minted by :meth:`apply`;
    * ``noop_deltas`` — applies that turned out effectively empty
      (validated, then skipped: no version bump, no invalidation);
    * ``incremental_encodes`` / ``full_reencodes`` — whether the
      engine maintained its database preparation in place (shared
      dictionary extended code-stably) or had to redo it;
    * ``artifacts_carried`` — artifacts re-keyed to the new version
      because their decomposition touches no mutated relation (served
      warm after the delta, zero rebuilds);
    * ``artifacts_invalidated`` — artifacts a delta stopped serving at
      the head;
    * ``artifacts_retained`` — of those, the ones kept under their old
      version because that version still has open views (MVCC);
    * ``artifacts_gcd`` — old-version artifacts garbage-collected when
      their version's last view closed or the version left the
      snapshot window.
    """

    preprocessing: CacheStats = field(default_factory=CacheStats)
    forest: CacheStats = field(default_factory=CacheStats)
    access: CacheStats = field(default_factory=CacheStats)
    plans: CacheStats = field(default_factory=CacheStats)
    decompositions: CacheStats = field(default_factory=CacheStats)
    database_encodes: int = 0
    artifact_builds: int = 0
    build_waits: int = 0
    build_concurrency_peak: int = 0
    sessions: int = 0
    deltas_applied: int = 0
    noop_deltas: int = 0
    incremental_encodes: int = 0
    full_reencodes: int = 0
    artifacts_carried: int = 0
    artifacts_invalidated: int = 0
    artifacts_retained: int = 0
    artifacts_gcd: int = 0

    def of(self, kind: str) -> CacheStats:
        return getattr(self, kind)

    def as_dict(self) -> dict:
        return {
            "database_encodes": self.database_encodes,
            "artifact_builds": self.artifact_builds,
            "build_waits": self.build_waits,
            "build_concurrency_peak": self.build_concurrency_peak,
            "sessions": self.sessions,
            "deltas_applied": self.deltas_applied,
            "noop_deltas": self.noop_deltas,
            "incremental_encodes": self.incremental_encodes,
            "full_reencodes": self.full_reencodes,
            "artifacts_carried": self.artifacts_carried,
            "artifacts_invalidated": self.artifacts_invalidated,
            "artifacts_retained": self.artifacts_retained,
            "artifacts_gcd": self.artifacts_gcd,
            "preprocessing": self.preprocessing.as_dict(),
            "forest": self.forest.as_dict(),
            "access": self.access.as_dict(),
            "plans": self.plans.as_dict(),
            "decompositions": self.decompositions.as_dict(),
        }


class ArtifactStore:
    """Shared, read-only-once-built artifacts for one database.

    Args:
        database: the served database (a :class:`Database` or a plain
            mapping of relation names to tuple iterables, converted).
        engine: execution engine (name, instance, or ``None`` for a
            fresh instance of the process-global active engine's kind);
            every attached session serves with this engine, so cached
            artifacts are internally consistent.
        capacity: per-kind cache capacity (``None`` = unbounded,
            ``0`` = caching disabled).
        retain_versions: how many ``(db_version, database)`` snapshots
            the MVCC plane keeps (default
            :data:`~repro.session.mvcc.DEFAULT_RETAIN`); open views
            extend a version's lifetime beyond the window until their
            last close.
        strict_views: opt-in strict mode — any read of a non-head
            version raises :class:`~repro.errors.StaleViewError`
            (the pre-MVCC contract).
        wal: an optional :class:`~repro.data.wal.WriteAheadLog`;
            :meth:`apply` appends every effective delta to it *before*
            the in-memory apply.
    """

    #: Artifact kinds, one cache each.  ``preprocessing`` holds bag
    #: tables, ``forest`` counting forests, ``access`` assembled
    #: DirectAccess structures; ``plans`` and ``decompositions`` hold
    #: the (data-independent) planner products.
    KINDS = ("preprocessing", "forest", "access", "plans", "decompositions")

    def __init__(
        self,
        database: Database,
        engine: str | Engine | None = None,
        capacity: int | None = 64,
        db_version: int = 0,
        retain_versions: int | None = None,
        strict_views: bool = False,
        wal=None,
    ):
        if not isinstance(database, Database):
            database = Database(database)
        self._database = database
        # Worker processes attach mid-history: their fresh store must
        # start at the supervisor's current version or clients' pinned
        # views would cross wires (default 0 = a brand-new database).
        self._db_version = db_version
        self.strict_views = bool(strict_views)
        self.wal = wal
        self.snapshots = SnapshotPlane(
            DEFAULT_RETAIN if retain_versions is None else retain_versions
        )
        self.snapshots.record(db_version, database)
        # Version releases arrive from AnswerView weakref finalizers,
        # which can fire at any allocation point — including while this
        # thread already holds the registry lock.  They enqueue here
        # (deque.append is atomic) and drain at the next safe entry.
        self._pending_releases: deque[int] = deque()
        #: Optional cross-process artifact plane (worker processes set
        #: this to a :class:`repro.server.worker.PlaneClient`): builds
        #: consult it before running and offer their results after, so
        #: an artifact is built once per *server*, not once per worker.
        #: Must never raise — plane failures degrade to local builds.
        self.plane = None
        self.engine = resolve_engine(engine)
        self.stats = StoreStats()
        # Short-held: protects the cache maps, the build-lock registry,
        # and stats — never held across a build or an engine call.
        self._registry_lock = threading.Lock()
        # Serializes whole mutations (the engine's delta application
        # runs outside the registry lock; two racing deltas must not
        # interleave their encode work).
        self._mutation_lock = threading.Lock()
        self._build_locks: dict[tuple, threading.Lock] = {}
        # (kind, version, key) -> the relation names the artifact was
        # built from (``None`` = data-independent, always carried;
        # ``DEPENDS_ON_ALL`` = unknown, dropped by every delta).
        self._deps: dict[tuple, object] = {}
        self._building = 0
        # Builds nest (an access build runs the preprocessing and
        # forest builds inside it); concurrency is counted per
        # *thread*, not per nesting level, so the peak really means
        # "this many workers were building at the same instant".
        self._build_depth = threading.local()
        self._caches = {
            kind: CostAwareCache(capacity, self.stats.of(kind))
            for kind in self.KINDS
        }
        self._encoded = False
        self.ensure_encoded()

    # -- the live database -------------------------------------------------

    @property
    def database(self) -> Database:
        """The currently served database (the newest version)."""
        return self._database

    @property
    def db_version(self) -> int:
        """Monotonic version, bumped by every :meth:`apply`."""
        return self._db_version

    def current(self) -> tuple[int, Database]:
        """An atomic ``(db_version, database)`` snapshot.

        Requests capture this pair once so a delta landing mid-request
        cannot mix versions: the build reads the snapshot database and
        registers its artifacts under the snapshot version.
        """
        with self._registry_lock:
            return self._db_version, self._database

    # -- MVCC: retained versions and view pins -----------------------------

    def database_at(self, version: int) -> Database:
        """The retained database for ``version`` — the head, or an
        MVCC snapshot.  Raises :class:`~repro.errors.StaleViewError`
        when the snapshot was evicted, or (for non-head versions) when
        the store runs in ``strict_views`` mode."""
        self._drain_releases()
        with self._registry_lock:
            if version == self._db_version:
                return self._database
            if self.strict_views:
                raise StaleViewError(
                    f"db_version {version} is not the head "
                    f"({self._db_version}) and this store runs in "
                    "strict mode; re-prepare the query"
                )
            database = self.snapshots.get(version)
            if database is None:
                raise StaleViewError(
                    f"db_version {version} was evicted (head is "
                    f"{self._db_version}, retained: "
                    f"{list(self.snapshots.versions())}); re-prepare "
                    "the query for a fresh view"
                )
            return database

    def is_readable(self, version: int) -> bool:
        """Whether a view pinned at ``version`` may still serve: the
        head, or a retained snapshot outside strict mode."""
        self._drain_releases()
        with self._registry_lock:
            if version == self._db_version:
                return True
            if self.strict_views:
                return False
            return version in self.snapshots

    def pin_version(self, version: int) -> bool:
        """Take a view reference on ``version`` (``False`` when it is
        no longer retained — the view is born already stale)."""
        self._drain_releases()
        with self._registry_lock:
            return self.snapshots.pin(version)

    def release_version(self, version: int) -> None:
        """Drop a view reference.  Safe to call from ``weakref``
        finalizers: the release is queued (lock-free) and processed at
        the next store entry, so a garbage-collection cycle triggered
        while this thread holds the registry lock cannot deadlock."""
        self._pending_releases.append(version)

    def _drain_releases(self) -> None:
        if not self._pending_releases:
            return
        with self._registry_lock:
            while True:
                try:
                    version = self._pending_releases.popleft()
                except IndexError:
                    break
                last = self.snapshots.release(version)
                if last and version != self._db_version:
                    self._purge_versions({version})

    def _purge_versions(self, versions: set[int]) -> None:
        # Registry lock held by the caller: drop every artifact cached
        # under a no-longer-retained version.
        for kind in self.KINDS:
            cache = self._caches[kind]
            for vkey in cache.keys():
                if vkey[0] in versions:
                    cache.pop(vkey)
                    self._deps.pop((kind, vkey[0], vkey[1]), None)
                    self.stats.artifacts_gcd += 1

    # -- sessions ----------------------------------------------------------

    def session(self, cache_slack=0):
        """A cheap per-worker :class:`~repro.session.AccessSession`
        attached to this store (own counters, shared artifacts)."""
        from repro.session.session import AccessSession

        return AccessSession(store=self, cache_slack=cache_slack)

    # -- the build protocol ------------------------------------------------

    #: Build-lock registry is pruned (unheld locks dropped) past this
    #: size, so a long-lived server's evicted keys cannot leak locks.
    LOCK_REGISTRY_LIMIT = 1024

    def _build_lock(self, kind: str, key) -> threading.Lock:
        with self._registry_lock:
            if len(self._build_locks) > self.LOCK_REGISTRY_LIMIT:
                # A held lock is always kept: its builder (and anyone
                # blocked on it) still references that exact object.
                self._build_locks = {
                    k: lock
                    for k, lock in self._build_locks.items()
                    if lock.locked() or k[0] == "encode"
                }
            return self._build_locks.setdefault(
                (kind, key), threading.Lock()
            )

    def ensure_encoded(self) -> None:
        """Encode the database exactly once, no matter how many workers
        attach (shared-domain dictionary under numpy, warm sort caches
        under Python)."""
        if self._encoded:
            return
        with self._build_lock("encode", None):
            if self._encoded:
                return
            self.engine.encode_database(self.database)
            with self._registry_lock:
                self.stats.database_encodes += 1
                self._encoded = True

    #: Dependency-registry prune threshold (mirrors the build-lock
    #: registry): entries for evicted artifacts are dropped lazily.
    DEPS_REGISTRY_LIMIT = 4096

    def _record_deps(self, kind: str, version: int, key, relations) -> None:
        # Registry lock held by the caller.
        self._deps[(kind, version, key)] = relations
        if len(self._deps) > self.DEPS_REGISTRY_LIMIT:
            live = {
                (kind_, vkey[0], vkey[1])
                for kind_ in self.KINDS
                for vkey in self._caches[kind_].keys()
            }
            self._deps = {
                dep: value
                for dep, value in self._deps.items()
                if dep in live
            }

    def get(
        self,
        kind: str,
        key,
        extra: CacheStats | None = None,
        version: int | None = None,
    ):
        """Cached artifact or ``None``; counts a hit/miss in the store
        aggregate and in the caller's ``extra`` stats.  ``version``
        defaults to the current database version."""
        with self._registry_lock:
            if version is None:
                version = self._db_version
            return self._caches[kind].get((version, key), extra)

    def put(
        self, kind: str, key, value, cost=0,
        extra: CacheStats | None = None,
        version: int | None = None,
        relations=DEPENDS_ON_ALL,
    ) -> None:
        """Register an artifact under the given (or current) version.

        ``relations`` declares which relation names the artifact was
        built from, steering delta invalidation: a ``frozenset`` is
        invalidated only by deltas touching one of its members,
        ``None`` marks a data-independent artifact (plans,
        decompositions — carried across every delta), and the default
        :data:`DEPENDS_ON_ALL` is dropped by any delta.
        """
        with self._registry_lock:
            if version is None:
                version = self._db_version
            self._caches[kind].put(
                (version, key), value, cost=cost, extra=extra
            )
            self._record_deps(kind, version, key, relations)

    def contains(
        self, kind: str, key, version: int | None = None
    ) -> bool:
        """Membership without touching counters or recency (the
        cache-aware planner's warm-order peek)."""
        with self._registry_lock:
            if version is None:
                version = self._db_version
            return (version, key) in self._caches[kind]

    def get_or_build(
        self,
        kind: str,
        key,
        builder,
        cost=0,
        extra: CacheStats | None = None,
        counted: bool = False,
        version: int | None = None,
        relations=DEPENDS_ON_ALL,
    ):
        """The artifact under ``key``, building it at most once.

        A miss takes the *per-key* build lock, re-checks, and runs
        ``builder()`` while unrelated keys build concurrently.  ``cost``
        (the decomposition exponent) steers eviction.  Builder errors
        propagate and cache nothing, so a failed build does not poison
        the key.  ``counted=True`` means the caller already recorded
        this lookup's hit/miss (no double counting).  ``version`` pins
        the database version the artifact belongs to (default: the
        current one, resolved once at entry); ``relations`` declares
        its delta-invalidation dependencies as in :meth:`put`.
        """
        with self._registry_lock:
            if version is None:
                version = self._db_version
            vkey = (version, key)
            if counted:
                value = self._caches[kind].peek(vkey)
            else:
                value = self._caches[kind].get(vkey, extra)
        if value is not None:
            return value
        while True:
            lock = self._build_lock(kind, vkey)
            with lock:
                with self._registry_lock:
                    # The registry may have pruned this lock between
                    # setdefault and acquire (it was unheld then); a
                    # stale lock no longer excludes other builders, so
                    # retake the registered one.
                    if self._build_locks.get((kind, vkey)) is not lock:
                        continue
                    # Double-check: another worker may have built it
                    # while we waited on the key lock.  peek() keeps
                    # the earlier miss honest (this worker did miss;
                    # it just did not build).
                    value = self._caches[kind].peek(vkey)
                    if value is not None:
                        self.stats.build_waits += 1
                        return value
                    depth = getattr(self._build_depth, "value", 0)
                    if depth == 0:
                        self._building += 1
                        self.stats.build_concurrency_peak = max(
                            self.stats.build_concurrency_peak,
                            self._building,
                        )
                plane = self.plane
                fetched = False
                self._build_depth.value = depth + 1
                try:
                    value = None
                    if plane is not None:
                        value = plane.fetch(kind, key, version)
                        fetched = value is not None
                    if value is None:
                        value = builder()
                finally:
                    self._build_depth.value = depth
                    if depth == 0:
                        with self._registry_lock:
                            self._building -= 1
                if plane is not None and not fetched:
                    plane.offer(kind, key, version, value)
                with self._registry_lock:
                    if not fetched:
                        self.stats.artifact_builds += 1
                    self._caches[kind].put(
                        vkey, value, cost=cost, extra=extra
                    )
                    self._record_deps(kind, version, key, relations)
                return value

    # -- mutations ---------------------------------------------------------

    def apply(self, delta) -> int:
        """Apply ``delta``, bump the version, invalidate selectively.

        The delta is validated, minimized against the live database
        (:meth:`~repro.data.delta.Delta.effective_against`), appended
        to the write-ahead log when one is attached (*before* any
        in-memory change — the durability contract), and then applied:
        the engine maintains its database preparation
        (:meth:`~repro.engine.base.Engine.apply_delta` — the numpy
        engine extends the shared dictionary in place when
        order-preservation allows, re-encoding only mutated
        relations), and one pass over the caches re-keys every
        artifact whose declared relations are disjoint from the
        delta's touched set to the new version (``artifacts_carried``).
        The rest stop serving the head (``artifacts_invalidated``):
        they are kept under the old version while that version has
        open views (``artifacts_retained``), dropped otherwise.  The
        old database itself is retained in the MVCC snapshot plane.
        Returns the new database version.

        An empty — or *effectively* empty, e.g. deleting absent rows —
        delta is a no-op: the current version comes back unbumped,
        nothing is logged or invalidated, and pinned views stay
        untouched (``noop_deltas`` counts it).  Raises
        :class:`~repro.errors.DatabaseError` for unknown relations or
        wrong-arity rows, before any state changes.
        """
        from repro.data.delta import Delta

        delta = Delta.coerce(delta)
        if delta.is_empty:
            return self.db_version
        self._drain_releases()
        with self._mutation_lock:
            database = self._database
            delta.validate_against(database)
            delta = delta.effective_against(database)
            if delta.is_empty:
                with self._registry_lock:
                    self.stats.noop_deltas += 1
                return self._db_version
            if self.wal is not None:
                # Append-before-apply: a crash from here on is repaired
                # by replay-on-boot, which re-applies this record.
                self.wal.append_delta(delta, self._db_version + 1)
            new_database, incremental = self.engine.apply_delta(
                database, delta
            )
            touched = delta.touched
            with self._registry_lock:
                old = self._db_version
                new = old + 1
                self._database = new_database
                self._db_version = new
                self.stats.deltas_applied += 1
                if incremental:
                    self.stats.incremental_encodes += 1
                else:
                    self.stats.full_reencodes += 1
                keep_old = self.snapshots.refs(old) > 0
                evicted = set(self.snapshots.record(new, new_database))
                for kind in self.KINDS:
                    cache = self._caches[kind]
                    for vkey in cache.keys():
                        version, key = vkey
                        if version != old:
                            # An older retained version's artifact:
                            # keep serving its pinned views, unless
                            # the window just evicted the version.
                            if version in evicted:
                                cache.pop(vkey)
                                self._deps.pop(
                                    (kind, version, key), None
                                )
                                self.stats.artifacts_gcd += 1
                            continue
                        deps = self._deps.get(
                            (kind, version, key), DEPENDS_ON_ALL
                        )
                        survives = deps is None or (
                            deps is not DEPENDS_ON_ALL
                            and not (deps & touched)
                        )
                        if survives:
                            value, cost = cache.pop(vkey)
                            self._deps.pop((kind, version, key), None)
                            cache.put((new, key), value, cost=cost)
                            self._deps[(kind, new, key)] = deps
                            self.stats.artifacts_carried += 1
                        elif keep_old:
                            # Invalidated at the head but the old
                            # version has open views: retain it for
                            # them, GC'd when the last view closes.
                            self.stats.artifacts_invalidated += 1
                            self.stats.artifacts_retained += 1
                        else:
                            cache.pop(vkey)
                            self._deps.pop((kind, version, key), None)
                            self.stats.artifacts_invalidated += 1
            return new

    # -- observability / lifecycle -----------------------------------------

    def cache(self, kind: str) -> CostAwareCache:
        """The underlying cache for ``kind`` (tests and introspection;
        not synchronized — take care off the serving path)."""
        return self._caches[kind]

    def cache_stats(self) -> dict:
        """A plain-dict snapshot of the store-level counters (plus the
        MVCC plane's, and the WAL's when one is attached)."""
        self._drain_releases()
        with self._registry_lock:
            out = self.stats.as_dict()
            out["db_version"] = self._db_version
            out["mvcc"] = self.snapshots.counters()
        if self.wal is not None:
            out["wal"] = self.wal.wal_stats()
        return out

    def clear(self) -> None:
        """Drop every cached artifact (counters and the encoded
        database are kept)."""
        with self._registry_lock:
            for cache in self._caches.values():
                cache.clear()
            self._deps.clear()
            # Held locks are kept, like the prune path: an in-flight
            # builder must stay the only builder for its key.
            self._build_locks = {
                key: lock
                for key, lock in self._build_locks.items()
                if lock.locked() or key[0] == "encode"
            }

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{kind}={len(self._caches[kind])}" for kind in self.KINDS
        )
        return (
            f"ArtifactStore({self.database!r}, "
            f"engine={self.engine.name!r}, {sizes})"
        )


__all__ = ["ArtifactStore", "DEPENDS_ON_ALL", "StoreStats"]
