"""MVCC snapshot retention for the artifact store: :class:`SnapshotPlane`.

The paper's structures are expensive to build and cheap to query —
exactly the shape multi-version concurrency rewards.  Before this
module, :meth:`ArtifactStore.apply` dropped the old database object on
every mutation, so a version-pinned :class:`~repro.facade.AnswerView`
had nothing left to serve and every read raised
:class:`~repro.errors.StaleViewError`.  The plane keeps history
instead:

* the store records every ``(db_version, database)`` head here and the
  plane retains the **last K versions** (``retain``, default
  :data:`DEFAULT_RETAIN`) — bounded memory, cheap because
  ``Database.apply`` shares every untouched relation object between
  versions;
* prepared views **pin** their version (a per-version refcount); a
  pinned version outlives the K-window until its last view closes, so
  an open view *always* keeps serving its snapshot;
* when the last view of an out-of-window version closes — or a version
  with no views falls out of the window — the snapshot is dropped and
  the store garbage-collects the artifacts cached under it;
* :class:`~repro.errors.StaleViewError` remains only as the fallback
  for reads of an *evicted* version, plus the store's opt-in
  ``strict_views`` mode that restores the old fail-on-any-mutation
  contract.

The plane itself is deliberately lock-free: every call happens under
the owning store's registry lock (pin/release arrive through the
store, which defers releases from ``weakref`` finalizers onto a queue
to stay deadlock-free).
"""

from __future__ import annotations

from repro.data.database import Database

#: How many ``(db_version, database)`` snapshots a store retains by
#: default.  Views pinned to an in-window version keep serving across
#: that many subsequent mutations; refcounts extend the lifetime of
#: pinned versions beyond the window until their last view closes.
DEFAULT_RETAIN = 4


class SnapshotPlane:
    """Retains the last K database versions, refcounted by open views.

    Not thread-safe on its own: the owning
    :class:`~repro.session.artifacts.ArtifactStore` serializes all
    access under its registry lock.
    """

    def __init__(self, retain: int = DEFAULT_RETAIN):
        self.retain = max(1, int(retain))
        self._snapshots: dict[int, Database] = {}
        self._refs: dict[int, int] = {}
        # Monotonic counters, surfaced in the store's cache_stats().
        self.snapshots_evicted = 0
        self.views_pinned = 0
        self.views_released = 0

    # -- recording history -------------------------------------------------

    def record(self, version: int, database: Database) -> list[int]:
        """Register a new head; returns the versions evicted by the
        K-window (pinned versions are never evicted here — they drain
        through :meth:`release`)."""
        self._snapshots[version] = database
        keep = self._window()
        evicted = [
            v
            for v in list(self._snapshots)
            if v not in keep and self._refs.get(v, 0) == 0
        ]
        for v in evicted:
            del self._snapshots[v]
            self._refs.pop(v, None)
        self.snapshots_evicted += len(evicted)
        return evicted

    def _window(self) -> set[int]:
        return set(sorted(self._snapshots)[-self.retain :])

    # -- reading history ---------------------------------------------------

    def get(self, version: int) -> Database | None:
        """The retained database for ``version`` (``None`` = evicted)."""
        return self._snapshots.get(version)

    def __contains__(self, version: int) -> bool:
        return version in self._snapshots

    def __len__(self) -> int:
        return len(self._snapshots)

    def versions(self) -> tuple[int, ...]:
        return tuple(sorted(self._snapshots))

    # -- refcounts (view pins) ---------------------------------------------

    def refs(self, version: int) -> int:
        return self._refs.get(version, 0)

    def pin(self, version: int) -> bool:
        """Take a reference on ``version``; ``False`` if it is no
        longer retained (the caller's view is born stale)."""
        if version not in self._snapshots:
            return False
        self._refs[version] = self._refs.get(version, 0) + 1
        self.views_pinned += 1
        return True

    def release(self, version: int) -> bool:
        """Drop one reference; ``True`` exactly when this was the last
        view of ``version`` (the caller should GC its artifacts).  An
        out-of-window version is evicted here, deferred until its last
        view closed."""
        count = self._refs.get(version, 0)
        if count <= 0:
            return False
        self.views_released += 1
        if count > 1:
            self._refs[version] = count - 1
            return False
        del self._refs[version]
        if version in self._snapshots and version not in self._window():
            del self._snapshots[version]
            self.snapshots_evicted += 1
        return True

    # -- observability -----------------------------------------------------

    def counters(self) -> dict:
        return {
            "retained": len(self._snapshots),
            "retain_limit": self.retain,
            "pinned_versions": len(self._refs),
            "open_views": sum(self._refs.values()),
            "snapshots_evicted": self.snapshots_evicted,
            "views_pinned": self.views_pinned,
            "views_released": self.views_released,
        }

    def __repr__(self) -> str:
        return (
            f"SnapshotPlane(retain={self.retain}, "
            f"versions={list(self.versions())}, refs={self._refs})"
        )


__all__ = ["DEFAULT_RETAIN", "SnapshotPlane"]
