"""Order-sensitive tasks on top of direct access (the §1 motivation).

Direct access turns ``Q(D)`` into a virtual sorted array, which makes
order statistics, boxplots, uniform sampling without repetition, and
paginated/ranked retrieval logarithmic-per-item after preprocessing.

Every multi-index task here resolves its whole index set through the
batch API (:meth:`~repro.core.access.DirectAccess.tuples_at` /
``answers_at``) in one call instead of one access walk per index — the
numpy engine then answers the batch level-synchronously with vectorized
binary searches.  Access structures that only implement the scalar
:class:`~repro.core.counting.SupportsDirectAccess` protocol (e.g. the
Proposition 35 reductions) degrade transparently to per-index calls.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core.counting import SupportsDirectAccess
from repro.errors import OutOfBoundsError


def _tuples_at(access: SupportsDirectAccess, indices: list[int]) -> list[tuple]:
    """Batch resolve ``indices``, via ``tuples_at`` when available."""
    batch = getattr(access, "tuples_at", None)
    if batch is not None:
        return batch(indices)
    return [access.tuple_at(i) for i in indices]


def answer_count(access: SupportsDirectAccess) -> int:
    """The number of answers (array length)."""
    return len(access)


def _quantile_rank(n: int, fraction: Fraction | float) -> int:
    if n == 0:
        raise OutOfBoundsError("no answers: quantiles undefined")
    if not 0 <= fraction <= 1:
        raise ValueError("quantile fraction must be within [0, 1]")
    return int(Fraction(fraction) * (n - 1))


def quantile(
    access: SupportsDirectAccess, fraction: Fraction | float
) -> tuple:
    """The answer at rank ``⌊fraction * (n-1)⌋`` (nearest-rank, 0-based)."""
    return access.tuple_at(_quantile_rank(len(access), fraction))


def median(access: SupportsDirectAccess) -> tuple:
    """The middle answer of the sorted answer array."""
    return quantile(access, Fraction(1, 2))


def boxplot(access: SupportsDirectAccess) -> dict[str, tuple]:
    """Five-number summary: min, lower quartile, median, upper quartile, max.

    All five ranks are resolved in one batch access.
    """
    n = len(access)
    fractions = (
        ("min", Fraction(0)),
        ("q1", Fraction(1, 4)),
        ("median", Fraction(1, 2)),
        ("q3", Fraction(3, 4)),
        ("max", Fraction(1)),
    )
    ranks = [_quantile_rank(n, f) for _, f in fractions]
    answers = _tuples_at(access, ranks)
    return {
        name: answer
        for (name, _), answer in zip(fractions, answers)
    }


def sample_without_repetition(
    access: SupportsDirectAccess, k: int, seed: int | None = None
) -> list[tuple]:
    """``k`` uniform answers without repetition ([19]'s application).

    Draws ``k`` distinct indices uniformly and resolves them with one
    batch access.
    """
    n = len(access)
    if k > n:
        raise OutOfBoundsError(f"cannot sample {k} of {n} answers")
    rng = random.Random(seed)
    return _tuples_at(access, rng.sample(range(n), k))


def page(
    access: SupportsDirectAccess, page_number: int, page_size: int
) -> list[tuple]:
    """Ranked pagination: answers ``[page*size, (page+1)*size)``.

    Raises :class:`~repro.errors.OutOfBoundsError` for a negative
    ``page_number`` (pages past the end are simply empty, which ends a
    forward scan cleanly — but a negative page is a caller bug, not an
    empty page).
    """
    if page_number < 0:
        raise OutOfBoundsError(
            f"page number must be non-negative, got {page_number}"
        )
    if page_size <= 0:
        raise OutOfBoundsError(
            f"page size must be positive, got {page_size}"
        )
    n = len(access)
    start = page_number * page_size
    stop = min(start + page_size, n)
    return _tuples_at(access, list(range(start, stop)))


def enumerate_in_order(access: SupportsDirectAccess, chunk: int = 1024):
    """Full ordered enumeration by consecutive accesses ([10]).

    Lazily yields tuples, resolving ``chunk`` indices per batch so the
    numpy engine vectorizes the scan without materializing the output.
    """
    if chunk <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk}")
    n = len(access)
    for start in range(0, n, chunk):
        yield from _tuples_at(
            access, list(range(start, min(start + chunk, n)))
        )
