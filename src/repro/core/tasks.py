"""Order-sensitive tasks on top of direct access (the §1 motivation).

Direct access turns ``Q(D)`` into a virtual sorted array, which makes
order statistics, boxplots, uniform sampling without repetition, and
paginated/ranked retrieval logarithmic-per-item after preprocessing.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.core.counting import SupportsDirectAccess
from repro.errors import OutOfBoundsError


def answer_count(access: SupportsDirectAccess) -> int:
    """The number of answers (array length)."""
    return len(access)


def quantile(
    access: SupportsDirectAccess, fraction: Fraction | float
) -> tuple:
    """The answer at rank ``⌊fraction * (n-1)⌋`` (nearest-rank, 0-based)."""
    n = len(access)
    if n == 0:
        raise OutOfBoundsError("no answers: quantiles undefined")
    if not 0 <= fraction <= 1:
        raise ValueError("quantile fraction must be within [0, 1]")
    rank = int(Fraction(fraction) * (n - 1))
    return access.tuple_at(rank)


def median(access: SupportsDirectAccess) -> tuple:
    """The middle answer of the sorted answer array."""
    return quantile(access, Fraction(1, 2))


def boxplot(access: SupportsDirectAccess) -> dict[str, tuple]:
    """Five-number summary: min, lower quartile, median, upper quartile, max."""
    return {
        "min": quantile(access, 0),
        "q1": quantile(access, Fraction(1, 4)),
        "median": quantile(access, Fraction(1, 2)),
        "q3": quantile(access, Fraction(3, 4)),
        "max": quantile(access, 1),
    }


def sample_without_repetition(
    access: SupportsDirectAccess, k: int, seed: int | None = None
) -> list[tuple]:
    """``k`` uniform answers without repetition ([19]'s application).

    Draws ``k`` distinct indices uniformly and resolves each with one
    access call.
    """
    n = len(access)
    if k > n:
        raise OutOfBoundsError(f"cannot sample {k} of {n} answers")
    rng = random.Random(seed)
    return [access.tuple_at(i) for i in rng.sample(range(n), k)]


def page(
    access: SupportsDirectAccess, page_number: int, page_size: int
) -> list[tuple]:
    """Ranked pagination: answers ``[page*size, (page+1)*size)``."""
    n = len(access)
    start = page_number * page_size
    stop = min(start + page_size, n)
    return [access.tuple_at(i) for i in range(max(start, 0), stop)]


def enumerate_in_order(access: SupportsDirectAccess):
    """Full ordered enumeration by consecutive accesses ([10])."""
    for index in range(len(access)):
        yield access.tuple_at(index)
