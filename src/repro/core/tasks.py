"""Order-sensitive task kernels on top of direct access (the §1 motivation).

Direct access turns ``Q(D)`` into a virtual sorted array, which makes
order statistics, boxplots, uniform sampling without repetition, and
paginated/ranked retrieval logarithmic-per-item after preprocessing.

Every multi-index kernel here resolves its whole index set through the
batch API (:meth:`~repro.core.access.DirectAccess.tuples_at` /
``answers_at``) in one call instead of one access walk per index — the
numpy engine then answers the batch level-synchronously with vectorized
binary searches.  Access structures that only implement the scalar
:class:`~repro.core.counting.SupportsDirectAccess` protocol (e.g. the
Proposition 35 reductions) degrade transparently to per-index calls.

.. deprecated:: 1.3
    The module-level free functions (``median``, ``boxplot``, ``page``,
    ``sample_without_repetition``, ...) are deprecated public entry
    points: call the corresponding :class:`repro.AnswerView` methods on
    a view prepared through :func:`repro.connect` instead.  The free
    functions keep working but emit :class:`DeprecationWarning`; the
    private ``*_impl`` kernels below are what the facade itself runs.
"""

from __future__ import annotations

import random
import warnings
from fractions import Fraction

from repro.core.counting import SupportsDirectAccess
from repro.errors import OutOfBoundsError


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.core.tasks.{name}() is deprecated; use "
        f"{replacement} on a view from repro.connect(...).prepare(...)",
        DeprecationWarning,
        stacklevel=3,
    )


def _tuples_at(access: SupportsDirectAccess, indices: list[int]) -> list[tuple]:
    """Batch resolve ``indices``, via ``tuples_at`` when available."""
    batch = getattr(access, "tuples_at", None)
    if batch is not None:
        return batch(indices)
    return [access.tuple_at(i) for i in indices]


# -- kernels (the facade's AnswerView methods call these directly) --------


def _quantile_rank(n: int, fraction: Fraction | float) -> int:
    if n == 0:
        raise OutOfBoundsError("no answers: quantiles undefined")
    if not 0 <= fraction <= 1:
        raise ValueError("quantile fraction must be within [0, 1]")
    return int(Fraction(fraction) * (n - 1))


def quantile_impl(
    access: SupportsDirectAccess, fraction: Fraction | float
) -> tuple:
    return access.tuple_at(_quantile_rank(len(access), fraction))


def median_impl(access: SupportsDirectAccess) -> tuple:
    return quantile_impl(access, Fraction(1, 2))


def boxplot_impl(access: SupportsDirectAccess) -> dict[str, tuple]:
    n = len(access)
    fractions = (
        ("min", Fraction(0)),
        ("q1", Fraction(1, 4)),
        ("median", Fraction(1, 2)),
        ("q3", Fraction(3, 4)),
        ("max", Fraction(1)),
    )
    ranks = [_quantile_rank(n, f) for _, f in fractions]
    answers = _tuples_at(access, ranks)
    return {
        name: answer
        for (name, _), answer in zip(fractions, answers)
    }


def sample_impl(
    access: SupportsDirectAccess, k: int, seed: int | None = None
) -> list[tuple]:
    n = len(access)
    if k < 0:
        # random.Random.sample would leak a bare ValueError here;
        # surface the same error type as the k > n path instead.
        raise OutOfBoundsError(f"cannot sample {k} answers")
    if k > n:
        raise OutOfBoundsError(f"cannot sample {k} of {n} answers")
    rng = random.Random(seed)
    return _tuples_at(access, rng.sample(range(n), k))


def page_impl(
    access: SupportsDirectAccess, page_number: int, page_size: int
) -> list[tuple]:
    if page_number < 0:
        raise OutOfBoundsError(
            f"page number must be non-negative, got {page_number}"
        )
    if page_size <= 0:
        raise OutOfBoundsError(
            f"page size must be positive, got {page_size}"
        )
    n = len(access)
    start = page_number * page_size
    stop = min(start + page_size, n)
    return _tuples_at(access, list(range(start, stop)))


def enumerate_impl(access: SupportsDirectAccess, chunk: int = 1024):
    if chunk <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk}")
    n = len(access)
    for start in range(0, n, chunk):
        yield from _tuples_at(
            access, list(range(start, min(start + chunk, n)))
        )


# -- deprecated public entry points ---------------------------------------


def answer_count(access: SupportsDirectAccess) -> int:
    """The number of answers (array length).

    .. deprecated:: 1.3  Use ``len(view)``.
    """
    _deprecated("answer_count", "len(view)")
    return len(access)


def quantile(
    access: SupportsDirectAccess, fraction: Fraction | float
) -> tuple:
    """The answer at rank ``⌊fraction * (n-1)⌋`` (nearest-rank, 0-based).

    .. deprecated:: 1.3  Use :meth:`repro.AnswerView.quantile`.
    """
    _deprecated("quantile", "AnswerView.quantile(fraction)")
    return quantile_impl(access, fraction)


def median(access: SupportsDirectAccess) -> tuple:
    """The middle answer of the sorted answer array.

    .. deprecated:: 1.3  Use :meth:`repro.AnswerView.median`.
    """
    _deprecated("median", "AnswerView.median()")
    return median_impl(access)


def boxplot(access: SupportsDirectAccess) -> dict[str, tuple]:
    """Five-number summary: min, lower quartile, median, upper quartile, max.

    All five ranks are resolved in one batch access.

    .. deprecated:: 1.3  Use :meth:`repro.AnswerView.boxplot`.
    """
    _deprecated("boxplot", "AnswerView.boxplot()")
    return boxplot_impl(access)


def sample_without_repetition(
    access: SupportsDirectAccess, k: int, seed: int | None = None
) -> list[tuple]:
    """``k`` uniform answers without repetition ([19]'s application).

    Draws ``k`` distinct indices uniformly and resolves them with one
    batch access.  Raises :class:`~repro.errors.OutOfBoundsError` when
    ``k`` is negative or exceeds the answer count.

    .. deprecated:: 1.3  Use :meth:`repro.AnswerView.sample`.
    """
    _deprecated("sample_without_repetition", "AnswerView.sample(k, seed)")
    return sample_impl(access, k, seed)


def page(
    access: SupportsDirectAccess, page_number: int, page_size: int
) -> list[tuple]:
    """Ranked pagination: answers ``[page*size, (page+1)*size)``.

    Raises :class:`~repro.errors.OutOfBoundsError` for a negative
    ``page_number`` (pages past the end are simply empty, which ends a
    forward scan cleanly — but a negative page is a caller bug, not an
    empty page).

    .. deprecated:: 1.3  Use :meth:`repro.AnswerView.page`.
    """
    _deprecated("page", "AnswerView.page(number, size)")
    return page_impl(access, page_number, page_size)


def enumerate_in_order(access: SupportsDirectAccess, chunk: int = 1024):
    """Full ordered enumeration by consecutive accesses ([10]).

    Lazily yields tuples, resolving ``chunk`` indices per batch so the
    numpy engine vectorizes the scan without materializing the output.

    .. deprecated:: 1.3  Use ``iter(view)``.
    """
    _deprecated("enumerate_in_order", "iter(view)")
    return enumerate_impl(access, chunk)
