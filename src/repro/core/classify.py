"""Section 7 as an API: the tight complexity verdict for a query/order.

Theorem 44 pins the complexity of lexicographic direct access down to
the incompatibility number; this module packages the full verdict —
the achievable upper bound, the matching conditional lower bound and its
assumption, the tractability classification of [18]'s dichotomy, and the
structural witnesses — into one inspectable object.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.decomposition import DisruptionFreeDecomposition
from repro.hypergraph.disruptive_trios import find_disruptive_trio
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder


@dataclass(frozen=True)
class TightBounds:
    """The complete Theorem 44 verdict for one query/order pair.

    Attributes:
        iota: the incompatibility number (exact rational).
        upper_bound: human-readable preprocessing/access upper bound.
        lower_bound: the matching conditional lower bound statement.
        assumption: the conjecture the lower bound rests on.
        tractable: True iff linear preprocessing + polylog access is
            possible ([18]'s dichotomy: acyclic and trio-free ⇔ ι = 1).
        acyclic: whether the query hypergraph is acyclic.
        disruptive_trio: a witness trio, or None.
        witness_bag: the decomposition bag realizing ι.
        selfjoins_relevant: always False — Theorem 33 proves self-joins
            do not affect direct-access complexity; recorded explicitly
            because the answer is surprising.
    """

    iota: Fraction
    upper_bound: str
    lower_bound: str
    assumption: str
    tractable: bool
    acyclic: bool
    disruptive_trio: tuple[str, str, str] | None
    witness_bag: frozenset[str]
    selfjoins_relevant: bool = False

    def summary(self) -> str:
        lines = [
            f"incompatibility number ι = {self.iota}",
            f"upper bound:  {self.upper_bound}",
            f"lower bound:  {self.lower_bound}",
            f"assumption:   {self.assumption}",
            f"tractable (linear prep): {self.tractable}",
        ]
        if self.disruptive_trio:
            lines.append(
                f"disruptive trio: {self.disruptive_trio}"
            )
        return "\n".join(lines)


def classify(query: JoinQuery, order: VariableOrder) -> TightBounds:
    """The tight direct-access bounds for ``(query, order)``.

    Self-joins are allowed: by Theorem 33 the verdict depends only on
    the underlying hypergraph.
    """
    order.validate_for(query)
    hypergraph = Hypergraph.of_query(query)
    decomposition = DisruptionFreeDecomposition(query, order)
    iota = decomposition.incompatibility_number
    acyclic = is_acyclic(hypergraph)
    trio = find_disruptive_trio(hypergraph, order)
    tractable = iota == 1

    if iota == 1:
        lower = "Ω(|D|) preprocessing (unconditional, Theorem 44)"
        assumption = "none (information-theoretic)"
    elif iota == 2 and acyclic:
        lower = (
            "no O(|D|^{2-ε}) preprocessing with polylog access "
            "(Corollary 25)"
        )
        assumption = "3SUM / APSP / Zero-3-Clique Conjecture"
    else:
        lower = (
            f"no O(|D|^{{{iota}-ε}}) preprocessing with polylog "
            "access (Theorem 44)"
        )
        assumption = "Zero-Clique Conjecture (all k)"

    return TightBounds(
        iota=iota,
        upper_bound=(
            f"O(|D|^{iota}) preprocessing, O(log |D|) access "
            "(Theorem 10)"
        ),
        lower_bound=lower,
        assumption=assumption,
        tractable=tractable,
        acyclic=acyclic,
        disruptive_trio=trio,
        witness_bag=decomposition.witness_bag().edge,
    )
