"""Hypertree decompositions and fractional hypertree width (§3.3, §8.1).

The paper uses a simplified notion: a hypertree decomposition of ``H`` is
an *acyclic* hypergraph on the same vertices such that every edge of
``H`` is contained in some bag. Its fractional width is the maximum
``ρ*(H[b])`` over bags ``b``. The fractional hypertree width ``fhtw(H)``
is the minimum fractional width over all decompositions — and, by
Proposition 45, equals the minimum incompatibility number over all
variable orders, which is how we compute it.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import permutations

from repro.core.decomposition import DisruptionFreeDecomposition
from repro.hypergraph.disruptive_trios import has_disruptive_trio
from repro.hypergraph.gyo import is_acyclic
from repro.hypergraph.hypergraph import Hypergraph
from repro.lp.covers import fractional_edge_cover_number
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder


def is_hypertree_decomposition(
    hypergraph: Hypergraph, bags: Hypergraph
) -> bool:
    """Check the (simplified) decomposition conditions of Section 3.3."""
    if bags.vertices != hypergraph.vertices:
        return False
    if not is_acyclic(bags):
        return False
    return all(
        any(edge <= bag for bag in bags.edges)
        for edge in hypergraph.edges
    )


def fractional_width(
    hypergraph: Hypergraph, bags: Hypergraph
) -> Fraction:
    """``max_b ρ*(H[b])`` of a decomposition's bags."""
    return max(
        fractional_edge_cover_number(hypergraph.induced(bag))
        for bag in bags.edges
    )


def fractional_hypertree_width(
    query: JoinQuery,
) -> tuple[Fraction, VariableOrder]:
    """``fhtw(Q)`` and an order realizing it (Proposition 45).

    Minimizes the incompatibility number over all variable orders, which
    Proposition 45 shows equals the fractional hypertree width. Brute
    force over permutations — exponential in the (constant) query size.
    """
    best: Fraction | None = None
    best_order: VariableOrder | None = None
    for perm in permutations(query.variables):
        order = VariableOrder(perm)
        value = DisruptionFreeDecomposition(
            query, order
        ).incompatibility_number
        if best is None or value < best:
            best = value
            best_order = order
    assert best is not None and best_order is not None
    return best, best_order


def decomposition_is_trio_free(
    bags: Hypergraph, order: VariableOrder
) -> bool:
    """Whether a decomposition has no disruptive trio w.r.t. ``order``.

    Used to state (and test) the optimality of the disruption-free
    decomposition: among trio-free decompositions it has minimal
    fractional width (Proposition 14).
    """
    return not has_disruptive_trio(bags, order)
