"""Orderless direct access for the 4-cycle query (Lemma 48, §8.2).

The 4-cycle has fractional hypertree width 2, so *lexicographic* direct
access needs essentially quadratic preprocessing (Corollary 46). Dropping
the order requirement, Lemma 48 reaches ``O(|D|^{3/2})`` preprocessing:

1. split every relation into *heavy* rows (first attribute of degree
   > √|R|) and *light* rows;
2. the 16 heavy/light subqueries partition the answers;
3. each subquery regroups the cycle into two 3-ary bags, one of the four
   rotations giving bags of size ``O(|D|^{3/2})`` (the case analysis of
   Claim 6 — found here by exact linear-time size estimates);
4. each regrouped query is acyclic and trio-free for a suitable order, so
   the Theorem 1 engine gives logarithmic access; index spaces are
   concatenated.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.access import DirectAccess
from repro.data.database import Database
from repro.errors import OutOfBoundsError
from repro.hypergraph.disruptive_trios import is_tractable_pair
from repro.hypergraph.hypergraph import Hypergraph
from repro.joins.operators import Table
from repro.query.atoms import Atom
from repro.query.catalog import four_cycle_query
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder

_VARS = ("x1", "x2", "x3", "x4")


def split_heavy_light(table: Table) -> tuple[Table, Table]:
    """Split on the degree of the first attribute at threshold √|R|."""
    threshold = len(table) ** 0.5
    degree: dict[object, int] = {}
    for row in table.rows:
        degree[row[0]] = degree.get(row[0], 0) + 1
    heavy = {row for row in table.rows if degree[row[0]] > threshold}
    return (
        Table(table.schema, heavy),
        Table(table.schema, table.rows - heavy),
    )


def _join_size_estimate(left: Table, right: Table) -> int:
    """Exact size of ``left ⋈ right`` on ``left[1] = right[0]``, in O(|D|)."""
    left_degree: dict[object, int] = {}
    for row in left.rows:
        left_degree[row[1]] = left_degree.get(row[1], 0) + 1
    total = 0
    for row in right.rows:
        total += left_degree.get(row[0], 0)
    return total


def _trio_free_order(query: JoinQuery) -> VariableOrder:
    hypergraph = Hypergraph.of_query(query)
    for perm in permutations(query.variables):
        order = VariableOrder(perm)
        if is_tractable_pair(hypergraph, order):
            return order
    raise AssertionError("regrouped 4-cycle must be acyclic and trio-free")


class OrderlessFourCycleAccess:
    """Orderless direct access for ``Q◦`` with ``Õ(|D|^{3/2})`` preprocessing.

    Simulates *some* bijection ``[n] -> Q◦(D)`` (no order guarantee), with
    logarithmic access time. ``bag_budget`` reports the largest
    materialized bag, the quantity the ``|D|^{3/2}`` bound governs.
    """

    def __init__(self, database: Database):
        self.query = four_cycle_query()
        database.validate_for(self.query)
        self.database = database

        parts: dict[str, tuple[Table, Table]] = {}
        for i, variable in enumerate(_VARS):
            successor = _VARS[(i + 1) % 4]
            table = Table.from_atom(
                Atom(f"R{i + 1}", (variable, successor)),
                database[f"R{i + 1}"],
            )
            parts[f"R{i + 1}"] = split_heavy_light(table)

        self._sections: list[tuple[int, DirectAccess]] = []
        self.bag_budget = 0
        for signature in range(16):
            choice = [(signature >> i) & 1 for i in range(4)]
            tables = [
                parts[f"R{i + 1}"][choice[i]] for i in range(4)
            ]
            if any(len(t) == 0 for t in tables):
                continue
            access = self._build_subaccess(tables, signature)
            if access is not None and len(access) > 0:
                self._sections.append((len(access), access))

        self._total = sum(count for count, _ in self._sections)

    def _build_subaccess(
        self, tables: list[Table], signature: int
    ) -> DirectAccess | None:
        # Pick the rotation with the smallest larger bag (Claim 6
        # guarantees some rotation is within the |D|^{3/2} budget).
        best_rotation = None
        best_cost = None
        for rotation in range(4):
            first = _join_size_estimate(
                tables[rotation], tables[(rotation + 1) % 4]
            )
            second = _join_size_estimate(
                tables[(rotation + 2) % 4], tables[(rotation + 3) % 4]
            )
            cost = max(first, second)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_rotation = rotation
        assert best_rotation is not None
        g = best_rotation

        first_bag = tables[g].natural_join(tables[(g + 1) % 4])
        second_bag = tables[(g + 2) % 4].natural_join(
            tables[(g + 3) % 4]
        )
        self.bag_budget = max(
            self.bag_budget, len(first_bag), len(second_bag)
        )
        if len(first_bag) == 0 or len(second_bag) == 0:
            return None

        name_one = f"S1_{signature}"
        name_two = f"S2_{signature}"
        regrouped = JoinQuery(
            (
                Atom(name_one, first_bag.schema),
                Atom(name_two, second_bag.schema),
            ),
            name=f"Q_cycle4_sub{signature}",
        )
        sub_database = Database(
            {
                name_one: first_bag.to_relation(),
                name_two: second_bag.to_relation(),
            }
        )
        order = _trio_free_order(regrouped)
        return DirectAccess(regrouped, order, sub_database)

    def __len__(self) -> int:
        return self._total

    def answer_at(self, index: int) -> dict[str, object]:
        """The ``index``-th answer under the simulated bijection."""
        if index < 0 or index >= self._total:
            raise OutOfBoundsError(
                f"index {index} out of range [0, {self._total})"
            )
        remaining = index
        for count, access in self._sections:
            if remaining < count:
                return access.answer_at(remaining)
            remaining -= count
        raise AssertionError("section bookkeeping out of sync")

    def tuple_at(self, index: int) -> tuple:
        answer = self.answer_at(index)
        return tuple(answer[v] for v in _VARS)


def four_cycle_answer_exists(database: Database) -> bool:
    """Boolean 4-cycle evaluation in ``Õ(|D|^{3/2})`` (end of §8.3).

    The paper notes that if *all* variables of ``Q◦`` are projected, the
    single Boolean answer can be decided faster than any lexicographic
    completion allows (which would cost ``|D|^2`` by Corollary 46): the
    Lemma 48 engine decides existence within its preprocessing budget.
    """
    return len(OrderlessFourCycleAccess(database)) > 0


def four_cycle_count(database: Database) -> int:
    """``|Q◦(D)|`` in ``Õ(|D|^{3/2})``, via the heavy/light partition.

    Direct access trivially yields counting (the array length), so the
    Lemma 48 engine also counts 4-cycles below the fhtw exponent — the
    observation closing Section 8.2.
    """
    return len(OrderlessFourCycleAccess(database))
