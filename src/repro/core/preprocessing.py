"""Theorem 10 preprocessing: materializing the bag relations.

For each bag ``e_i`` of the disruption-free decomposition we compute a
relation over ``e_i`` by joining, with the worst-case optimal Generic
Join, the projections ``π_{e_i}(R_j)`` of the atoms realizing an optimal
fractional edge cover of ``H[e_i]`` — time ``O(|D|^{ρ*(H[e_i])})``, hence
``O(|D|^ι)`` overall. Each original atom is then enforced *exactly* (not
just as a projection) at the bag of its latest variable, which makes the
join of the bag relations equal to ``Q(D)``.

All tuple-level work (atom interpretation, projections, joins, exact
semijoin filters) runs on the execution engine active at construction
time, so one preprocessing pass is internally consistent even if the
global engine is switched while it runs.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.decomposition import Bag, DisruptionFreeDecomposition
from repro.data.database import Database
from repro.engine.registry import get_engine
from repro.errors import QueryError
from repro.joins.operators import Table
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder


@dataclass
class PreprocessedBag:
    """A bag together with its materialized relation.

    ``table`` has schema ``interface variables (in order) + (v_i,)``.
    """

    bag: Bag
    table: Table


@dataclass(frozen=True)
class BagTables:
    """Materialized bag relations with the identity they carry.

    ``tables`` maps each bag variable to its relation; ``key`` is
    ``(query signature, decomposition cache_key)`` and ``database`` the
    exact database the tables were computed from.  The provenance lets
    :class:`Preprocessing` *validate* injected tables instead of
    silently replaying stale ones: per-bag tables are order-independent
    within one (query, decomposition, database) triple, and only there.
    """

    tables: Mapping[str, Table]
    key: tuple
    database: Database

    def __len__(self) -> int:
        return len(self.tables)


class Preprocessing:
    """The full Theorem 10 preprocessing result.

    .. deprecated:: 1.3
        As a *public entry point* (``repro.Preprocessing``): use
        :func:`repro.connect` — preprocessing (and its cross-order
        caching) happens behind :meth:`repro.Connection.prepare`.  The
        class itself remains the internal engine-room structure.

    Args:
        query: the join query.
        order: the variable order.
        database: the input database.
        decomposition: optionally, the already-built disruption-free
            decomposition of ``(query, order)`` (avoids recomputing it
            when a caller — e.g. the session's advisor — has one).
        bag_tables: optionally, already-materialized bag relations as a
            :class:`BagTables` carrier, e.g. another
            :meth:`Preprocessing.bag_tables` result from a session
            cache fed by *another order inducing the same
            decomposition* (their schemas are canonical given the
            decomposition, so reuse is exact).  The carrier's
            provenance is validated — a different query, decomposition,
            or database raises :class:`~repro.errors.QueryError`.  When
            given, no tuple-level work happens at all;
            :attr:`materialized_bag_count` stays 0.
    """

    def __init__(
        self,
        query: JoinQuery,
        order: VariableOrder,
        database: Database,
        *,
        decomposition: DisruptionFreeDecomposition | None = None,
        bag_tables: BagTables | None = None,
    ):
        database.validate_for(query)
        self.query = query
        self.order = order
        self.database = database
        self.engine = get_engine()
        if decomposition is None:
            decomposition = DisruptionFreeDecomposition(query, order)
        elif (
            # Signatures, not __eq__: the head name is cosmetic, and
            # session caches deliberately share entries across it.
            decomposition.query is not query
            and decomposition.query.signature() != query.signature()
        ) or list(decomposition.order) != list(order):
            raise QueryError(
                "decomposition was built for a different query/order"
            )
        self.decomposition = decomposition
        self._position = {v: i for i, v in enumerate(order)}
        self._provenance = (
            query.signature(),
            decomposition.cache_key(),
        )
        #: Bags whose relations were materialized here (0 on cache reuse).
        self.materialized_bag_count = 0
        if bag_tables is None:
            self.bags = self._materialize()
            self.materialized_bag_count = len(self.bags)
        else:
            if (
                bag_tables.database is not database
                or bag_tables.key != self._provenance
            ):
                raise QueryError(
                    "bag tables were built for a different "
                    "query/decomposition/database"
                )
            self.bags = [
                PreprocessedBag(
                    bag=bag, table=bag_tables.tables[bag.variable]
                )
                for bag in self.decomposition.bags
            ]

    def bag_tables(self) -> BagTables:
        """The materialized bag relations as a reusable carrier.

        The cacheable artifact: every order inducing the same
        decomposition produces exactly these tables (same schemas, same
        rows), so a session stores this under the decomposition's
        :meth:`~repro.core.decomposition.DisruptionFreeDecomposition.cache_key`
        and replays it via the ``bag_tables`` constructor argument;
        the carrier's provenance guards the replay.
        """
        return BagTables(
            tables={
                item.bag.variable: item.table for item in self.bags
            },
            key=self._provenance,
            database=self.database,
        )

    @property
    def incompatibility_number(self):
        return self.decomposition.incompatibility_number

    def _atom_tables(self) -> list[Table]:
        return [
            self.engine.from_atom(atom, self.database[atom.relation])
            for atom in self.query.atoms
        ]

    def _ordered(self, variables) -> list[str]:
        return sorted(variables, key=self._position.__getitem__)

    def _materialize(self) -> list[PreprocessedBag]:
        atom_tables = self._atom_tables()

        # Atoms are enforced exactly at the bag of their latest variable.
        enforced_at: dict[int, list[Table]] = {}
        for table in atom_tables:
            index = self.decomposition.bag_of_atom(frozenset(table.schema))
            enforced_at.setdefault(index, []).append(table)

        out: list[PreprocessedBag] = []
        for bag in self.decomposition.bags:
            bag_schema = self._ordered(bag.interface) + [bag.variable]
            cover_tables = []
            for trace, _weight in bag.cover:
                cover_tables.append(
                    self._covering_projection(trace, bag, atom_tables)
                )
            if not cover_tables:
                raise QueryError(
                    f"bag {set(bag.edge)} has an empty fractional cover"
                )
            table = self.engine.join(cover_tables, bag_schema)
            for exact in enforced_at.get(bag.index, ()):  # exact filters
                table = self.engine.semijoin(table, exact)
            out.append(PreprocessedBag(bag=bag, table=table))
        return out

    def _covering_projection(
        self, trace: frozenset[str], bag: Bag, atom_tables: list[Table]
    ) -> Table:
        """``π_{e_i}`` of an atom whose scope traces to ``trace`` on the bag."""
        for table in atom_tables:
            if frozenset(table.schema) & bag.edge == trace:
                variables = tuple(self._ordered(trace))
                return self.engine.project(
                    table, variables, table._positions(variables)
                )
        raise QueryError(
            f"no atom realizes trace {set(trace)} on bag {set(bag.edge)}"
        )

    def materialized_size(self) -> int:
        """Total number of tuples across the bag relations."""
        return sum(len(p.table) for p in self.bags)
