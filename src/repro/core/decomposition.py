"""Disruption-free decompositions and the incompatibility number (§3).

Given a join query ``Q`` and an ordering ``L = (v1..vℓ)`` of its
variables, Definition 4 builds edges ``e_i = {v_i} ∪ {earlier neighbors
of v_i}`` scanning ``i = ℓ..1`` over an iteratively grown hypergraph. The
result ``H_0`` is an acyclic super-hypergraph of ``Q`` with no disruptive
trio for ``L`` (Proposition 6). The *incompatibility number* (Definition
9) is ``ι = max_i ρ*(H[e_i])`` — the exponent of the preprocessing time
of Theorem 10.

The new edges form a forest: the parent of bag ``i`` is the bag of the
latest variable in ``e_i \\ {v_i}`` (this containment follows from Lemma
7 and is asserted in the test suite). The forest drives the counting
structure of :mod:`repro.core.access`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.hypergraph.hypergraph import Hypergraph
from repro.lp.covers import fractional_edge_cover
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder


@dataclass(frozen=True)
class Bag:
    """One bag of the disruption-free decomposition.

    Attributes:
        index: position ``i`` of the bag's variable in the order (0-based).
        variable: ``v_i``, the latest variable of the bag.
        edge: ``e_i``, the bag's variable set.
        interface: ``e_i \\ {v_i}`` — all strictly earlier than ``v_i``.
        parent: index of the parent bag (the bag of the latest interface
            variable), or None for roots.
        cover_number: ``ρ*(H[e_i])`` of the *original* query hypergraph
            induced on the bag.
        cover: an optimal fractional edge cover of ``H[e_i]``, as a map
            from trace edges (``scope ∩ e_i``) to weights.
    """

    index: int
    variable: str
    edge: frozenset[str]
    interface: frozenset[str]
    parent: int | None
    cover_number: Fraction
    cover: tuple[tuple[frozenset[str], Fraction], ...]


class DisruptionFreeDecomposition:
    """The disruption-free decomposition of a query for an order."""

    def __init__(self, query: JoinQuery, order: VariableOrder):
        order.validate_for(query)
        self.query = query
        self.order = order
        self.hypergraph = Hypergraph.of_query(query)
        self._position = {v: i for i, v in enumerate(order)}
        self.bags = self._build_bags()
        self.incompatibility_number: Fraction = max(
            bag.cover_number for bag in self.bags
        )
        self._cache_key: tuple | None = None

    def _build_bags(self) -> tuple[Bag, ...]:
        variables = list(self.order)
        # Definition 4: scan i = ℓ..1 over an iteratively grown hypergraph.
        grown = self.hypergraph
        edges: dict[int, frozenset[str]] = {}
        for i in range(len(variables) - 1, -1, -1):
            v = variables[i]
            earlier = {
                u
                for u in grown.neighbors(v)
                if self._position[u] < i
            }
            edge = frozenset(earlier | {v})
            edges[i] = edge
            grown = grown.with_extra_edges([edge])
        self.decomposition_hypergraph = grown

        bags = []
        for i, v in enumerate(variables):
            edge = edges[i]
            interface = edge - {v}
            if interface:
                parent = max(self._position[u] for u in interface)
            else:
                parent = None
            value, weights = fractional_edge_cover(
                self.hypergraph.induced(edge)
            )
            cover = tuple(
                sorted(
                    weights.items(), key=lambda kv: tuple(sorted(kv[0]))
                )
            )
            bags.append(
                Bag(
                    index=i,
                    variable=v,
                    edge=edge,
                    interface=interface,
                    parent=parent,
                    cover_number=value,
                    cover=cover,
                )
            )
        return tuple(bags)

    # -- closed form of Lemma 7, used for cross-checking -----------------

    def closed_form_edges(self) -> dict[int, frozenset[str]]:
        """The edges via Lemma 7: ``e_i = {v_i} ∪ (N_Q(S_i) ∩ prefix)``.

        ``S_i`` is the connected component of ``v_i`` in the subhypergraph
        induced by the suffix ``{v_i, ..., vℓ}``.
        """
        variables = list(self.order)
        out: dict[int, frozenset[str]] = {}
        for i, v in enumerate(variables):
            suffix = set(variables[i:])
            component = self.hypergraph.induced(suffix).connected_component(
                v
            )
            neighborhood = self.hypergraph.neighbors_of_set(component)
            out[i] = frozenset(
                {v}
                | {
                    u
                    for u in neighborhood
                    if self._position[u] < i
                }
            )
        return out

    def cache_key(self) -> tuple:
        """A canonical, hashable identity of this decomposition.

        Two orders of the same query get equal keys iff they induce the
        same decomposition: the same ``variable -> (edge, interface,
        cover)`` map.  The key deliberately forgets the bag *indices*
        (i.e. where each variable sits in the order): permuting
        variables that never co-occur in a bag — cross-product
        components, star leaves — changes the order but not the
        decomposition, and such orders must share one preprocessing
        pass.  Equality of the per-variable edge map pins down the rest
        of the structure: for ``u, w`` in one edge, ``u ∈ e_w \\ {w}``
        forces ``u`` before ``w`` in *every* inducing order, so the
        parent forest, the within-interface variable order, and hence
        the bag-relation schemas and counting-forest shapes are all
        determined by the key.

        Sorted by variable name (not order position) so the key is
        stable across inducing orders; memoized, since sessions hash it
        on every request.
        """
        if self._cache_key is None:
            self._cache_key = tuple(
                sorted(
                    (
                        bag.variable,
                        tuple(sorted(bag.edge)),
                        tuple(sorted(bag.interface)),
                        tuple(
                            (tuple(sorted(edge)), weight)
                            for edge, weight in bag.cover
                        ),
                    )
                    for bag in self.bags
                )
            )
        return self._cache_key

    def bag_of_atom(self, scope: frozenset[str]) -> int:
        """The bag enforcing an atom exactly: the bag of its latest variable.

        Every atom scope is contained in the bag of its maximum variable
        (Proposition 11's argument); asserted in tests.
        """
        latest = max(scope, key=self._position.__getitem__)
        return self._position[latest]

    def children(self) -> dict[int | None, list[int]]:
        """Forest adjacency: parent index (or None) -> child bag indices."""
        adjacency: dict[int | None, list[int]] = {}
        for bag in self.bags:
            adjacency.setdefault(bag.parent, []).append(bag.index)
        return adjacency

    def witness_bag(self) -> Bag:
        """A bag achieving the incompatibility number."""
        return max(self.bags, key=lambda bag: bag.cover_number)

    def __repr__(self) -> str:
        edges = [
            (bag.variable, tuple(sorted(bag.edge))) for bag in self.bags
        ]
        return (
            f"DisruptionFreeDecomposition(ι="
            f"{self.incompatibility_number}, bags={edges})"
        )


def incompatibility_number(
    query: JoinQuery, order: VariableOrder
) -> Fraction:
    """The incompatibility number of ``query`` and ``order`` (Def. 9)."""
    return DisruptionFreeDecomposition(query, order).incompatibility_number
