"""Random-order enumeration without repetition ([19], §1).

Direct access makes random-order enumeration easy: stream the answers
``answers[π(0)], answers[π(1)], ...`` for a pseudorandom permutation π of
the index space. We build π with a 4-round Feistel network over a
power-of-two domain plus cycle-walking, so the permutation needs O(1)
memory no matter how many answers there are — materializing a shuffled
index list would defeat the point of not materializing the answers.
"""

from __future__ import annotations

import random
from collections.abc import Iterator


class FeistelPermutation:
    """A seeded pseudorandom permutation of ``range(n)``.

    A balanced Feistel network over ``2^(2w) >= n`` values; indices that
    land outside ``range(n)`` are walked through the cipher again
    (cycle-walking), which preserves bijectivity on ``range(n)``.
    """

    ROUNDS = 4

    def __init__(self, n: int, seed: int = 0):
        if n < 0:
            raise ValueError("domain size must be nonnegative")
        self.n = n
        half_bits = 1
        while (1 << (2 * half_bits)) < max(n, 2):
            half_bits += 1
        self._half_bits = half_bits
        self._mask = (1 << half_bits) - 1
        rng = random.Random(seed)
        self._keys = [
            rng.getrandbits(32) for _ in range(self.ROUNDS)
        ]

    def _round(self, value: int, key: int) -> int:
        value = (value * 2654435761 + key) & 0xFFFFFFFF
        value ^= value >> 13
        return value & self._mask

    def _encrypt_once(self, index: int) -> int:
        left = index >> self._half_bits
        right = index & self._mask
        for key in self._keys:
            left, right = right, left ^ self._round(right, key)
        return (left << self._half_bits) | right

    def __call__(self, index: int) -> int:
        if not 0 <= index < self.n:
            raise IndexError(f"{index} outside range({self.n})")
        value = self._encrypt_once(index)
        while value >= self.n:  # cycle-walk back into range
            value = self._encrypt_once(value)
        return value


def random_order_enumeration(
    access, seed: int = 0
) -> Iterator[tuple]:
    """Yield every answer exactly once, in pseudorandom order.

    Constant memory, one direct-access call per answer — the
    random-order enumeration application of direct access from [19].
    """
    permutation = FeistelPermutation(len(access), seed=seed)
    for index in range(len(access)):
        yield access.tuple_at(permutation(index))


def random_prefix(access, count: int, seed: int = 0) -> list[tuple]:
    """The first ``count`` answers of the random-order stream.

    Equivalent to sampling ``count`` answers without repetition, but
    resumable: extending ``count`` later continues the same stream.
    """
    out = []
    for answer in random_order_enumeration(access, seed=seed):
        out.append(answer)
        if len(out) >= count:
            break
    return out
