"""Self-join elimination for direct access (Section 6, Theorem 33).

The non-trivial direction: a direct-access algorithm for a join query
``Q`` *with* self-joins yields one for its self-join-free version
``Q^sf`` with the same preprocessing and near-same access time. The
pipeline composes, exactly as in the paper:

1. Lemma 34 — reduce ``Q^sf`` to the *colored* version ``Q^c`` by a
   lex-preserving exact reduction (tag every constant with its variable).
2. Proposition 35 — direct access for ``Q`` gives counting under prefix
   constraints for ``Q``.
3. Lemma 36 — counting for ``Q`` gives counting for ``Q^c``: build the
   tagged database ``D``, clone databases ``D_{T,j}``, solve a Vandermonde
   system per variable subset ``T``, combine by inclusion–exclusion, and
   divide by the number of automorphisms fixing the constrained prefix.
4. Proposition 35 again — counting for ``Q^c`` gives direct access for
   ``Q^c``, hence (via the Lemma 34 bijection) for ``Q^sf``.

Domain elements are encoded so Python's tuple order realizes the orders
the paper imposes: colored constants are ``(position_of_variable, value)``
and clone constants are ``(clone_index, position_of_variable, value)``.

The easy direction (``Q`` via ``Q^sf``) is :func:`duplicate_relations`.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

from repro.core.access import DirectAccess
from repro.core.counting import (
    CountingFromDirectAccess,
    DirectAccessFromCounting,
    PrefixConstraint,
)
from repro.data.database import Database
from repro.data.relation import Relation
from repro.errors import QueryError
from repro.query.query import JoinQuery
from repro.query.transforms import (
    automorphisms,
    query_structure,
    self_join_free_name,
    self_join_free_version,
)
from repro.query.variable_order import VariableOrder


def duplicate_relations(
    query: JoinQuery, database_for_selfjoin_free: Database
) -> Database:
    """The trivial direction of Theorem 33.

    Turn a database for ``Q^sf`` into one for ``Q`` is not possible in
    general (one symbol, many atoms); the trivial direction goes the other
    way: evaluate ``Q^sf`` on ``D^sf`` by evaluating ``Q`` after *copying*
    each of ``Q``'s relations once per atom. Here we implement the copy
    step used when a self-join-free engine must serve a query with
    self-joins: ``R_atom := R`` for every atom.
    """
    relations = {}
    for atom in query.atoms:
        relations[self_join_free_name(atom)] = (
            database_for_selfjoin_free[atom.relation]
        )
    return Database(relations)


class _Lemma36Counter:
    """Counting under prefix constraints for ``Q^c`` via counting for ``Q``.

    Preprocessing builds, for every ``T ⊆ var(Q)`` and clone count
    ``j ∈ [v+1]``, the clone database ``D_{T,j}`` and a counting oracle
    for ``Q`` on it (realized by the paper's own direct-access engine plus
    Proposition 35). Queries translate the constraint, collect the
    ``|hom(A_Q, D_{T,j}, c**)|`` values, solve the Vandermonde system (6)
    for ``|N_T|``, apply inclusion–exclusion (5), and divide by
    ``|aut(A_Q, c)|``.
    """

    def __init__(
        self,
        query: JoinQuery,
        order: VariableOrder,
        colored_database: Database,
    ):
        self.query = query
        self.order = order
        self.variables = list(order)
        self._position = {v: i for i, v in enumerate(order)}
        v = len(self.variables)

        tagged = self._build_tagged_database(colored_database)
        self._counters: dict[tuple[frozenset[str], int], CountingFromDirectAccess] = {}
        all_vars = frozenset(self.variables)
        for size in range(v + 1):
            for subset in combinations(sorted(all_vars), size):
                T = frozenset(subset)
                for j in range(1, v + 2):
                    clone_db = self._clone_database(tagged, T, j)
                    access = DirectAccess(query, order, clone_db)
                    self._counters[(T, j)] = CountingFromDirectAccess(
                        access
                    )
        # |aut(A_Q, c)| depends only on the prefix length r.
        self._aut_count = [
            len(automorphisms(query, tuple(self.variables[:r])))
            for r in range(v + 1)
        ]

    # -- database constructions ---------------------------------------

    def _build_tagged_database(self, colored: Database) -> Database:
        """The database ``D`` of Section 6.3 (tag values by variables)."""
        from repro.query.transforms import color_symbol

        structure = query_structure(self.query)
        color: dict[str, set] = {}
        for variable in self.variables:
            color[variable] = {
                row[0] for row in colored[color_symbol(variable)].tuples
            }
        out: dict[str, Relation] = {}
        for symbol, variable_tuples in structure.items():
            rows: set[tuple] = set()
            base = colored[symbol]
            for variables in variable_tuples:
                for raw in base.tuples:
                    if all(
                        value in color[var]
                        for var, value in zip(variables, raw)
                    ):
                        rows.add(
                            tuple(
                                (self._position[var], value)
                                for var, value in zip(variables, raw)
                            )
                        )
            out[symbol] = Relation(rows, arity=base.arity)
        return Database(out)

    def _clone_database(
        self, tagged: Database, T: frozenset[str], j: int
    ) -> Database:
        """The clone database ``D_{T,j}``: j copies of every T-tagged value."""
        cloned_positions = {self._position[v] for v in T}

        def blowup(value: tuple) -> list[tuple]:
            position, payload = value
            if position in cloned_positions:
                return [(k, position, payload) for k in range(1, j + 1)]
            return [(1, position, payload)]

        relations = {}
        for symbol, relation in tagged.relations.items():
            rows: set[tuple] = set()
            for row in relation.tuples:
                options = [blowup(value) for value in row]
                stack = [()]
                for column in options:
                    stack = [
                        prefix + (choice,)
                        for prefix in stack
                        for choice in column
                    ]
                rows.update(stack)
            relations[symbol] = Relation(rows, arity=relation.arity)
        return Database(relations)

    # -- counting -------------------------------------------------------

    def count(self, constraint: PrefixConstraint) -> int:
        """``|hom(A_{Q^c}, D^c, c)|`` for a constraint over ``dom(D^c)``."""
        r = constraint.length
        v = len(self.variables)
        prefix = self.variables[:r]
        C = frozenset(prefix)

        def translate(T: frozenset[str], j: int) -> int:
            exact = tuple(
                (1, self._position[var], value)
                for var, value in zip(prefix, constraint.exact)
            )
            low = (1, self._position[prefix[-1]], constraint.low)
            high = (1, self._position[prefix[-1]], constraint.high)
            translated = PrefixConstraint(exact, low, high)
            return self._counters[(T, j)].count(translated)

        hom_aut = Fraction(0)
        others = [u for u in self.variables if u not in C]
        for size in range(len(others) + 1):
            for extra in combinations(others, size):
                T = C | frozenset(extra)
                counts = [
                    translate(T, j) for j in range(1, v - r + 2)
                ]
                n_T = _solve_vandermonde_top(counts, r, v)
                hom_aut += (-1) ** (v - len(T)) * n_T
        aut = self._aut_count[r]
        result = hom_aut / aut
        if result.denominator != 1:
            raise QueryError(
                "self-join counting produced a non-integer count — "
                "inconsistent inputs"
            )
        return int(result)


def _solve_vandermonde_top(counts: list[int], r: int, v: int) -> Fraction:
    """Solve equations (6) and return ``|N_{T,v}| = |N_T|``.

    ``counts[j-1] = Σ_{i=r..v} j^{i-r} · |N_{T,i}|`` for ``j ∈ [v-r+1]``.
    The coefficient matrix is Vandermonde, hence invertible; Gaussian
    elimination over exact rationals.
    """
    size = v - r + 1
    matrix = [
        [Fraction(j) ** power for power in range(size)] + [Fraction(c)]
        for j, c in zip(range(1, size + 1), counts)
    ]
    for col in range(size):
        pivot = next(
            row for row in range(col, size) if matrix[row][col] != 0
        )
        matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
        pivot_value = matrix[col][col]
        matrix[col] = [x / pivot_value for x in matrix[col]]
        for row in range(size):
            if row != col and matrix[row][col] != 0:
                factor = matrix[row][col]
                matrix[row] = [
                    x - factor * y
                    for x, y in zip(matrix[row], matrix[col])
                ]
    return matrix[size - 1][size]


class SelfJoinFreeAccess:
    """Direct access for ``Q^sf`` powered by an engine for ``Q`` (Thm 33).

    Args:
        query: the join query ``Q``, typically with self-joins.
        order: the variable order ``L`` (shared by ``Q`` and ``Q^sf``).
        selfjoin_free_database: a database for
            :func:`~repro.query.transforms.self_join_free_version` of ``Q``.
    """

    def __init__(
        self,
        query: JoinQuery,
        order: VariableOrder,
        selfjoin_free_database: Database,
    ):
        self.query = query
        self.selfjoin_free_query = self_join_free_version(query)
        self.order = order
        order.validate_for(query)
        selfjoin_free_database.validate_for(self.selfjoin_free_query)
        self._position = {v: i for i, v in enumerate(order)}

        colored_db = self._lemma34_database(selfjoin_free_database)
        counter = _Lemma36Counter(query, order, colored_db)
        domain = sorted(
            {
                (self._position[variable], value)
                for variable in order
                for value in selfjoin_free_database.domain()
            }
        )
        self._inner = DirectAccessFromCounting(
            counter, len(list(order)), domain
        )

    def _lemma34_database(self, db_sf: Database) -> Database:
        """Build ``D^c`` for ``Q^c`` from ``D^sf`` (Lemma 34, hard direction).

        Colored constants are ``(position_of_variable, value)`` so that
        tuple comparison realizes the per-variable value order.
        """
        from repro.query.transforms import color_symbol

        domain_sf = db_sf.domain()
        relations: dict[str, set[tuple] | Relation] = {}
        for variable in self.order:
            relations[color_symbol(variable)] = Relation(
                {
                    ((self._position[variable], value),)
                    for value in domain_sf
                },
                arity=1,
            )
        grouped: dict[str, set[tuple]] = {}
        for atom in self.query.atoms:
            source = db_sf[self_join_free_name(atom)]
            rows = grouped.setdefault(atom.relation, set())
            for raw in source.tuples:
                rows.add(
                    tuple(
                        (self._position[var], value)
                        for var, value in zip(atom.variables, raw)
                    )
                )
        for symbol, rows in grouped.items():
            relations[symbol] = Relation(
                rows, arity=self.query.arity_of(symbol)
            )
        return Database(relations)

    def __len__(self) -> int:
        return len(self._inner)

    def tuple_at(self, index: int) -> tuple:
        """The ``index``-th answer of ``Q^sf(D^sf)`` in the ``L``-lex order."""
        tagged = self._inner.tuple_at(index)
        return tuple(value for _position, value in tagged)

    def answer_at(self, index: int) -> dict[str, object]:
        values = self.tuple_at(index)
        return dict(zip(self.order, values))
