"""The paper's primary contribution: decomposition-based direct access."""

from repro.core.access import DirectAccess
from repro.core.classify import TightBounds, classify
from repro.core.counting import (
    CountingFromDirectAccess,
    DirectAccessFromCounting,
    PrefixConstraint,
)
from repro.core.advisor import (
    OrderReport,
    cheapest_order,
    cheapest_order_with_prefix,
    order_cost_spread,
    rank_orders,
    rank_orders_with_prefix,
)
from repro.core.enumeration import (
    DelayInstrumentedEnumerator,
    materializing_enumerator,
    ranked_enumerator,
)
from repro.core.random_order import (
    FeistelPermutation,
    random_order_enumeration,
    random_prefix,
)
from repro.core.testing import AnswerTester
from repro.core.decomposition import (
    Bag,
    DisruptionFreeDecomposition,
    incompatibility_number,
)
from repro.core.htw import (
    fractional_hypertree_width,
    fractional_width,
    is_hypertree_decomposition,
)
from repro.core.orderless import OrderlessFourCycleAccess
from repro.core.preprocessing import Preprocessing
from repro.core.projections import (
    partial_order_access,
    partial_order_incompatibility,
)
from repro.core.selfjoins import SelfJoinFreeAccess

__all__ = [
    "AnswerTester",
    "FeistelPermutation",
    "TightBounds",
    "classify",
    "OrderReport",
    "random_order_enumeration",
    "random_prefix",
    "cheapest_order",
    "cheapest_order_with_prefix",
    "order_cost_spread",
    "rank_orders",
    "rank_orders_with_prefix",
    "Bag",
    "DelayInstrumentedEnumerator",
    "materializing_enumerator",
    "ranked_enumerator",
    "CountingFromDirectAccess",
    "DirectAccess",
    "DirectAccessFromCounting",
    "DisruptionFreeDecomposition",
    "OrderlessFourCycleAccess",
    "PrefixConstraint",
    "Preprocessing",
    "SelfJoinFreeAccess",
    "fractional_hypertree_width",
    "fractional_width",
    "incompatibility_number",
    "is_hypertree_decomposition",
    "partial_order_access",
    "partial_order_incompatibility",
]
