"""The order advisor: choosing a lexicographic order wisely.

Theorem 44 makes the preprocessing exponent an exact function of the
query and the order, so the cost of every ordering can be known *before
touching the data*. This module ranks orders by incompatibility number,
answers "what is the cheapest order extending my required prefix?"
(Definition 49's minimization, exposed as a planning tool) and surfaces
which variables are responsible for the hardness (the witness bag and
its disruptive structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import permutations

from repro.core.decomposition import DisruptionFreeDecomposition
from repro.hypergraph.disruptive_trios import find_disruptive_trio
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder


@dataclass(frozen=True)
class OrderReport:
    """One ranked ordering and why it costs what it costs.

    Attributes:
        order: the variable order.
        iota: its incompatibility number (the preprocessing exponent).
        witness_edge: the bag realizing ι.
        disruptive_trio: a trio witnessing incompatibility with the
            original hypergraph, or None.
    """

    order: VariableOrder
    iota: Fraction
    witness_edge: frozenset[str]
    disruptive_trio: tuple[str, str, str] | None

    def describe(self) -> str:
        trio = (
            f"disruptive trio {self.disruptive_trio}"
            if self.disruptive_trio
            else "no disruptive trio"
        )
        return (
            f"{list(self.order)}: ι = {self.iota} "
            f"(witness bag {sorted(self.witness_edge)}; {trio})"
        )


def rank_orders(
    query: JoinQuery, limit: int | None = None
) -> list[OrderReport]:
    """All variable orders of ``query``, cheapest first.

    Ties are broken lexicographically on the order itself, so the
    ranking is deterministic. ``limit`` truncates the output (the number
    of orders is factorial in the query size).
    """
    hypergraph = Hypergraph.of_query(query)
    reports = []
    for perm in permutations(query.variables):
        order = VariableOrder(perm)
        decomposition = DisruptionFreeDecomposition(query, order)
        witness = decomposition.witness_bag()
        reports.append(
            OrderReport(
                order=order,
                iota=decomposition.incompatibility_number,
                witness_edge=witness.edge,
                disruptive_trio=find_disruptive_trio(
                    hypergraph, order
                ),
            )
        )
    reports.sort(key=lambda r: (r.iota, r.order.variables))
    if limit is not None:
        reports = reports[:limit]
    return reports


def cheapest_order(query: JoinQuery) -> OrderReport:
    """The globally cheapest order — ι equals fhtw (Proposition 45)."""
    return rank_orders(query, limit=1)[0]


def cheapest_order_with_prefix(
    query: JoinQuery, prefix: VariableOrder
) -> OrderReport:
    """The cheapest order starting with ``prefix``.

    The planning face of Definition 49 (without projections): the user
    needs the answers sorted primarily by ``prefix`` and does not care
    how ties are broken; the advisor picks the completion minimizing the
    preprocessing exponent.
    """
    prefix.validate_for(query, partial=True)
    listed = set(prefix)
    rest = [v for v in query.variables if v not in listed]
    hypergraph = Hypergraph.of_query(query)
    best: OrderReport | None = None
    for completion in permutations(rest):
        order = VariableOrder(list(prefix) + list(completion))
        decomposition = DisruptionFreeDecomposition(query, order)
        report = OrderReport(
            order=order,
            iota=decomposition.incompatibility_number,
            witness_edge=decomposition.witness_bag().edge,
            disruptive_trio=find_disruptive_trio(hypergraph, order),
        )
        if best is None or (report.iota, report.order.variables) < (
            best.iota,
            best.order.variables,
        ):
            best = report
    assert best is not None
    return best


def order_cost_spread(query: JoinQuery) -> tuple[Fraction, Fraction]:
    """(min, max) incompatibility number over all orders.

    Quantifies how much the choice of order matters for the query: the
    max/min gap is the polynomial price of asking for the wrong order.
    """
    reports = rank_orders(query)
    return reports[0].iota, reports[-1].iota
