"""The order advisor: choosing a lexicographic order wisely.

Theorem 44 makes the preprocessing exponent an exact function of the
query and the order, so the cost of every ordering can be known *before
touching the data*. This module ranks orders by incompatibility number,
answers "what is the cheapest order extending my required prefix?"
(Definition 49's minimization, exposed as a planning tool) and surfaces
which variables are responsible for the hardness (the witness bag and
its disruptive structure).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from fractions import Fraction
from itertools import permutations

from repro.core.decomposition import DisruptionFreeDecomposition
from repro.hypergraph.disruptive_trios import find_disruptive_trio
from repro.hypergraph.hypergraph import Hypergraph
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder


@dataclass(frozen=True)
class OrderReport:
    """One ranked ordering and why it costs what it costs.

    Attributes:
        order: the variable order.
        iota: its incompatibility number (the preprocessing exponent).
        witness_edge: the bag realizing ι.
        disruptive_trio: a trio witnessing incompatibility with the
            original hypergraph, or None.
        decomposition: optional slot (excluded from equality/repr) a
            cache-aware planner can fill — e.g. the session attaches
            decompositions to the few head reports it keeps, so serving
            the planned order needs no recomputation.  Rankings leave
            it ``None`` to avoid retaining factorial-many
            decompositions.
    """

    order: VariableOrder
    iota: Fraction
    witness_edge: frozenset[str]
    disruptive_trio: tuple[str, str, str] | None
    decomposition: DisruptionFreeDecomposition | None = field(
        default=None, compare=False, repr=False
    )

    def describe(self) -> str:
        trio = (
            f"disruptive trio {self.disruptive_trio}"
            if self.disruptive_trio
            else "no disruptive trio"
        )
        return (
            f"{list(self.order)}: ι = {self.iota} "
            f"(witness bag {sorted(self.witness_edge)}; {trio})"
        )


def rank_orders(
    query: JoinQuery, limit: int | None = None
) -> list[OrderReport]:
    """All variable orders of ``query``, cheapest first.

    Ties are broken lexicographically on the order itself, so the
    ranking is deterministic. ``limit`` truncates the output (the number
    of orders is factorial in the query size) and streams: only the
    best ``limit`` reports are retained while iterating.
    """
    return _rank(query, permutations(query.variables), limit)


def _rank(
    query: JoinQuery, candidate_orders, limit: int | None
) -> list[OrderReport]:
    """Rank candidate orders; decompositions are dropped per candidate
    so only small report tuples accumulate (cache-aware planners
    rebuild them for the few reports they actually use)."""
    hypergraph = Hypergraph.of_query(query)

    def reports():
        for perm in candidate_orders:
            order = VariableOrder(perm)
            decomposition = DisruptionFreeDecomposition(query, order)
            yield OrderReport(
                order=order,
                iota=decomposition.incompatibility_number,
                witness_edge=decomposition.witness_bag().edge,
                disruptive_trio=find_disruptive_trio(
                    hypergraph, order
                ),
            )

    def sort_key(report: OrderReport):
        return (report.iota, report.order.variables)

    if limit is not None:
        return heapq.nsmallest(limit, reports(), key=sort_key)
    return sorted(reports(), key=sort_key)


def cheapest_order(query: JoinQuery) -> OrderReport:
    """The globally cheapest order — ι equals fhtw (Proposition 45)."""
    return rank_orders(query, limit=1)[0]


def rank_orders_with_prefix(
    query: JoinQuery,
    prefix: VariableOrder,
    limit: int | None = None,
) -> list[OrderReport]:
    """All orders extending ``prefix``, cheapest first.

    The planning face of Definition 49 (without projections): the user
    needs the answers sorted primarily by ``prefix`` and does not care
    how ties are broken; the ranking lists every completion by its
    preprocessing exponent so a cache-aware planner (the session) can
    trade a marginally higher exponent for an already-cached
    decomposition.
    """
    prefix.validate_for(query, partial=True)
    listed = set(prefix)
    rest = [v for v in query.variables if v not in listed]
    return _rank(
        query,
        (
            tuple(prefix) + completion
            for completion in permutations(rest)
        ),
        limit,
    )


def cheapest_order_with_prefix(
    query: JoinQuery, prefix: VariableOrder
) -> OrderReport:
    """The cheapest order starting with ``prefix``."""
    return rank_orders_with_prefix(query, prefix, limit=1)[0]


def order_cost_spread(query: JoinQuery) -> tuple[Fraction, Fraction]:
    """(min, max) incompatibility number over all orders.

    Quantifies how much the choice of order matters for the query: the
    max/min gap is the polynomial price of asking for the wrong order.
    """
    reports = rank_orders(query)
    return reports[0].iota, reports[-1].iota
