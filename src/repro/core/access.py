"""Lexicographic direct access (Theorems 1, 10 and 44-upper; Theorem 50).

:class:`DirectAccess` simulates the sorted array of ``Q(D)`` for the
lexicographic order induced by a variable order ``L``:

* preprocessing: materialize the disruption-free decomposition's bag
  relations (time ``O(|D|^ι)``, Theorem 10), then build a counting forest
  — per bag, tuples grouped by interface value, sorted by the bag
  variable's value, with subtree-weight prefix sums;
* access: walk ``L``, binary-searching one group per variable and
  maintaining the exact count of answers below the current prefix —
  ``O(ℓ log |D|)`` per call.

The counting forest is built by the execution engine active at
construction time: the Python engine loops per row, the numpy engine
lexsorts dictionary-encoded columns and takes one ``cumsum`` per bag —
the resulting structure is identical.  :meth:`DirectAccess.answers_at`
answers a whole batch of indices at once (vectorized under the numpy
engine), for pagination and sampling workloads.

Projected variables (conjunctive queries, Theorem 50) are supported when
they form a suffix of the order: their bags contribute existence
indicators instead of counts, so each free-variable answer is counted
once no matter how many extensions it has.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.core.preprocessing import Preprocessing
from repro.data.database import Database
from repro.engine.base import BagIndex as _BagIndex  # noqa: F401 (compat)
from repro.errors import OrderError, OutOfBoundsError, QueryError
from repro.query.query import JoinQuery
from repro.query.variable_order import VariableOrder


@dataclass(frozen=True)
class CountingForest:
    """A counting forest with the identity it was built for.

    ``indexes`` maps each bag variable to its
    :class:`~repro.engine.base.BagIndex`; ``key`` is ``(query
    signature, decomposition cache_key, projected frozenset)`` and
    ``database`` the exact database the counts came from.  The
    provenance lets :class:`DirectAccess` *validate* an injected forest
    instead of silently mis-counting with one built for a different
    query, decomposition, projection, or database — per-bag indexes
    are order-independent, but only within one such tuple.
    """

    indexes: Mapping[str, _BagIndex]
    key: tuple
    database: Database

    def __len__(self) -> int:
        return len(self.indexes)


class DirectAccess:
    """Array-like access to ``Q(D)`` sorted by the order ``L``.

    Supports ``len``, integer indexing (including negative indices),
    iteration (ordered enumeration), batch access
    (:meth:`answers_at`), inverse access (:meth:`rank_of` /
    :meth:`ranks_of` / ``in``), and slicing-free random access. For
    conjunctive queries with projections, pass the free-variable prefix of
    a completion order; see :mod:`repro.core.projections` for the
    Theorem 50 wrapper that picks an optimal completion automatically.

    .. deprecated:: 1.3
        As a *public entry point* (``repro.DirectAccess``): construct
        views through :func:`repro.connect` /
        :meth:`repro.Connection.prepare` instead, which adds planning,
        caching, and ``Sequence`` slice semantics on top.  This class
        remains the internal engine-room structure behind the facade.

    Args:
        query: a join query (all variables free).
        order: a permutation of *all* query variables. Variables listed in
            ``projected`` must form a suffix.
        database: the input database.
        projected: variables to project away (suffix of ``order``).
        preprocessing: optionally, an already-built
            :class:`~repro.core.preprocessing.Preprocessing` for the same
            ``(query, order, database)`` (session caches inject it here
            to skip re-materializing the bag relations).
        forest: optionally, an already-built :class:`CountingForest`
            from a session cache (e.g. another access structure's
            :attr:`forest`).  The per-bag indexes depend only on the
            decomposition (and ``projected``), not on the inducing
            order, so a forest built for one order is reused verbatim
            by any other order with the same decomposition; the
            forest's key is validated against this request and a
            mismatch raises :class:`~repro.errors.QueryError`.
    """

    def __init__(
        self,
        query: JoinQuery,
        order: VariableOrder,
        database: Database,
        projected: frozenset[str] | set[str] = frozenset(),
        *,
        preprocessing: Preprocessing | None = None,
        forest: CountingForest | None = None,
    ):
        self.query = query
        self.order = order
        self.database = database
        self.projected = frozenset(projected)
        variables = list(order)
        free_count = len(variables) - len(self.projected)
        if set(variables[free_count:]) != self.projected:
            raise OrderError(
                "projected variables must form a suffix of the order"
            )
        self._free_prefix = variables[:free_count]

        if preprocessing is None:
            preprocessing = Preprocessing(query, order, database)
        elif list(preprocessing.order) != variables:
            raise OrderError(
                "preprocessing was built for a different order"
            )
        elif preprocessing.database is not database or (
            preprocessing.query is not query
            and preprocessing.query.signature() != query.signature()
        ):
            raise QueryError(
                "preprocessing was built for a different "
                "query/database"
            )
        self.preprocessing = preprocessing
        self._engine = self.preprocessing.engine
        decomposition = self.preprocessing.decomposition
        self._bags = self.preprocessing.bags
        self._interface_vars: list[list[str]] = []
        self._position = {v: i for i, v in enumerate(order)}
        for item in self._bags:
            self._interface_vars.append(
                sorted(item.bag.interface, key=self._position.__getitem__)
            )
        self._children = decomposition.children()
        forest_key = (
            query.signature(),
            decomposition.cache_key(),
            self.projected,
        )
        if forest is not None and (
            forest.key != forest_key or forest.database is not database
        ):
            raise QueryError(
                "forest was built for a different query/"
                "decomposition/projection/database"
            )
        self._indexes, self._total = self._build_counts(forest)
        #: The counting forest — the cacheable, order-independent
        #: artifact (see the ``forest`` argument).
        self.forest = CountingForest(
            indexes={
                item.bag.variable: index
                for item, index in zip(self._bags, self._indexes)
            },
            key=forest_key,
            database=database,
        )

    @property
    def engine_name(self) -> str:
        """Name of the engine this access structure was built with."""
        return self._engine.name

    # -- preprocessing ----------------------------------------------------

    def _build_counts(
        self, forest: CountingForest | None = None
    ) -> tuple[list[_BagIndex], int]:
        count = len(self._bags)
        if forest is not None:
            indexes = [
                forest.indexes[item.bag.variable]
                for item in self._bags
            ]
        else:
            indexes: list[_BagIndex | None] = [None] * count
            for i in range(count - 1, -1, -1):
                item = self._bags[i]
                table = item.table
                schema_pos = {v: p for p, v in enumerate(table.schema)}
                child_slots = []
                for child in self._children.get(i, ()):  # children: > i
                    child_vars = self._interface_vars[child]
                    child_slots.append(
                        (
                            indexes[child],
                            [schema_pos[v] for v in child_vars],
                        )
                    )
                projected_bag = item.bag.variable in self.projected
                indexes[i] = self._engine.build_bag_index(
                    table, child_slots, projected_bag
                )

        total = 1
        for root in self._children.get(None, ()):
            indexes_root = indexes[root]
            total *= indexes_root.total(())
        return [index for index in indexes if index is not None], total

    # -- the array interface ----------------------------------------------

    def __len__(self) -> int:
        """The number of answers (of the free variables, if projecting)."""
        return self._total

    def __bool__(self) -> bool:
        return self._total > 0

    def answer_at(self, index: int) -> dict[str, object]:
        """The ``index``-th answer (0-based) as a variable -> value map.

        Raises :class:`~repro.errors.OutOfBoundsError` outside
        ``[0, len)`` — the paper's out-of-bounds error.
        """
        if index < 0 or index >= self._total:
            raise OutOfBoundsError(
                f"index {index} out of range [0, {self._total})"
            )
        self._engine.counters.add("answer_walks")
        return self._walk_at(index)

    def _walk_at(self, index: int) -> dict[str, object]:
        """One forest descent for a validated index — the uncounted
        inner walk; engines' batch loops call this so enumeration pays
        one counter update per *batch*, not one lock per answer."""
        remaining = index
        live = self._total
        assignment: dict[str, object] = {}
        for i, variable in enumerate(self._free_prefix):
            bag_index = self._indexes[i]
            interface = tuple(
                assignment[v] for v in self._interface_vars[i]
            )
            group_total = bag_index.total(interface)
            others = live // group_total
            values, weights, cumulative = bag_index.groups[interface]
            block = remaining // others
            j = bisect_right(cumulative, block) - 1
            assignment[variable] = values[j]
            remaining -= others * cumulative[j]
            live = others * weights[j]
        return assignment

    def answers_at(
        self, indices: Iterable[int] | Sequence[int]
    ) -> list[dict[str, object]]:
        """The answers at ``indices``, in the same order (batch access).

        Negative indices count from the end, like :meth:`__getitem__`.
        Raises :class:`~repro.errors.OutOfBoundsError` if any index
        falls outside ``[-len, len)``.  Under the numpy engine the whole
        batch is resolved level-synchronously with vectorized binary
        searches; the result is identical to calling :meth:`answer_at`
        per index.
        """
        normalized: list[int] = []
        for requested in indices:
            requested = int(requested)
            index = requested + self._total if requested < 0 else requested
            if index < 0 or index >= self._total:
                raise OutOfBoundsError(
                    f"index {requested} out of range "
                    f"[-{self._total}, {self._total})"
                )
            normalized.append(index)
        counters = self._engine.counters
        counters.add("access_batches")
        counters.add("access_indices", len(normalized))
        return self._engine.batch_access(self, normalized)

    def __getitem__(self, index: int) -> dict[str, object]:
        if index < 0:
            index += self._total
        return self.answer_at(index)

    def tuple_at(self, index: int) -> tuple:
        """The ``index``-th answer as a tuple over the free order prefix."""
        answer = self.answer_at(index)
        return tuple(answer[v] for v in self._free_prefix)

    def tuples_at(
        self, indices: Iterable[int] | Sequence[int]
    ) -> list[tuple]:
        """Batch :meth:`tuple_at`: tuples over the free prefix, in order.

        One engine batch (vectorized under numpy) instead of one access
        walk per index — the task layer (:mod:`repro.core.tasks`) routes
        boxplots, pages, and samples through this.
        """
        free = self._free_prefix
        return [
            tuple(answer[v] for v in free)
            for answer in self.answers_at(indices)
        ]

    # -- inverse access ----------------------------------------------------

    def rank_of(self, row: tuple) -> int | None:
        """The index of answer ``row``, or ``None`` if it is no answer.

        The inverse of :meth:`tuple_at`: ``row`` is a tuple over the
        free prefix, and whenever the result is not ``None``,
        ``self.tuple_at(self.rank_of(row)) == row``.  One counting-forest
        descent with a binary search per level — ``O(ℓ log |D|)``, never
        enumeration.
        """
        return self.ranks_of([row])[0]

    def ranks_of(
        self, rows: Iterable[tuple] | Sequence[tuple]
    ) -> list[int | None]:
        """Batch :meth:`rank_of`: one rank (or ``None``) per input row.

        Resolved by the engine in one batch — level-synchronous
        vectorized binary searches under numpy, one reference
        :func:`~repro.engine.base.rank_walk` per row under Python.
        """
        rows = list(rows)
        counters = self._engine.counters
        counters.add("rank_batches")
        counters.add("rank_tuples", len(rows))
        return self._engine.batch_rank(self, rows)

    def __contains__(self, row) -> bool:
        """Inverse-access membership (no enumeration).

        Accepts a tuple over the free prefix or a variable -> value
        mapping (the form :meth:`__getitem__` returns).
        """
        if isinstance(row, Mapping):
            if set(row) != set(self._free_prefix):
                return False
            row = tuple(row[v] for v in self._free_prefix)
        return self.rank_of(row) is not None

    @property
    def free_variables(self) -> tuple[str, ...]:
        """The variables of returned answers, in order position."""
        return tuple(self._free_prefix)

    #: Batch size of :meth:`__iter__`: large enough to amortize the
    #: vectorized batch dispatch, small enough to stay O(1)-ish memory.
    ITER_CHUNK = 1024

    def __iter__(self) -> Iterator[dict[str, object]]:
        """Ordered enumeration by consecutive accesses ([10]'s reduction).

        Iterates in chunked :meth:`answers_at` batches so enumeration is
        vectorized under the numpy engine while staying lazy: only
        :attr:`ITER_CHUNK` answers are materialized at a time.
        """
        for start in range(0, self._total, self.ITER_CHUNK):
            stop = min(start + self.ITER_CHUNK, self._total)
            yield from self.answers_at(range(start, stop))
