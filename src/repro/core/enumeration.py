"""Ranked enumeration with delay instrumentation (§2.2, [10]).

Enumeration lists all answers; its efficiency is measured by the
*preprocessing time* (before the first answer) and the *delay* between
consecutive answers. Direct access yields ordered enumeration by
consecutive accesses; this module wraps both the direct-access-backed
enumerator and the materializing baseline behind one instrumented
interface so benchmarks and tests can compare their profiles.
"""

from __future__ import annotations

import time
from collections.abc import Iterator


class DelayInstrumentedEnumerator:
    """Wraps an answer iterator, recording preprocessing time and delays.

    Args:
        setup: zero-argument callable performing the preprocessing and
            returning an iterable of answers.
    """

    def __init__(self, setup):
        start = time.perf_counter()
        self._answers = setup()
        self.preprocessing_seconds = time.perf_counter() - start
        self.delays: list[float] = []

    def __iter__(self) -> Iterator:
        previous = time.perf_counter()
        for answer in self._answers:
            now = time.perf_counter()
            self.delays.append(now - previous)
            previous = now
            yield answer

    @property
    def max_delay_seconds(self) -> float:
        return max(self.delays, default=0.0)

    @property
    def mean_delay_seconds(self) -> float:
        if not self.delays:
            return 0.0
        return sum(self.delays) / len(self.delays)


def ranked_enumerator(query, order, database):
    """Ordered enumeration through direct access.

    Linear-ish preprocessing on tractable pairs, logarithmic delay —
    the profile Theorem 1 guarantees; answers arrive in ``order``-lex
    order.
    """
    from repro.core.access import DirectAccess

    def setup():
        access = DirectAccess(query, order, database)
        return (
            access.tuple_at(index) for index in range(len(access))
        )

    return DelayInstrumentedEnumerator(setup)


def materializing_enumerator(query, order, database):
    """The baseline: compute and sort everything during preprocessing.

    Preprocessing pays for the whole (possibly huge) output; the delay
    afterwards is a list read.
    """
    from repro.joins.generic_join import evaluate

    def setup():
        table = evaluate(query, database, list(order))
        return iter(table.sorted_rows())

    return DelayInstrumentedEnumerator(setup)
