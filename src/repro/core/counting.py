"""Counting under prefix constraints ⇔ direct access (Proposition 35).

A *prefix constraint* on an order ``L = (v1..vℓ)`` fixes ``v1..v_{r-1}``
to constants and restricts ``v_r`` to an interval of the (ordered)
domain. Proposition 35 converts, in both directions and with only a
logarithmic overhead, between

* lexicographic direct access for ``(Q, L)``, and
* counting the answers satisfying a prefix constraint.

Both directions are implemented generically so the self-join elimination
pipeline of Section 6 can compose them exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.errors import OutOfBoundsError, ReproError


@dataclass(frozen=True)
class PrefixConstraint:
    """A constraint on a prefix ``v1..v_r`` of the variable order.

    ``exact`` gives the values of ``v1..v_{r-1}``; ``low``/``high`` bound
    ``v_r`` inclusively. The paper treats exact values as length-1
    intervals; this split representation is equivalent.
    """

    exact: tuple
    low: object
    high: object

    @property
    def length(self) -> int:
        """``r``: the number of constrained variables."""
        return len(self.exact) + 1


class SupportsDirectAccess(Protocol):
    """Anything array-like over lexicographically sorted answers."""

    def __len__(self) -> int: ...

    def tuple_at(self, index: int) -> tuple: ...


class SupportsPrefixCounting(Protocol):
    """A counting oracle for prefix constraints."""

    def count(self, constraint: PrefixConstraint) -> int: ...


class CountingFromDirectAccess:
    """Prefix-constraint counting on top of direct access (Prop. 35, ⇒).

    Answers satisfying a prefix constraint are contiguous in the sorted
    answer array; two binary searches locate the boundary indices.
    """

    def __init__(self, access: SupportsDirectAccess):
        self._access = access

    def first_index_above(self, bound: tuple, strict: bool = False) -> int:
        """Smallest index whose answer prefix is >= (or >) ``bound``."""
        width = len(bound)
        lo, hi = 0, len(self._access)
        while lo < hi:
            mid = (lo + hi) // 2
            prefix = self._access.tuple_at(mid)[:width]
            above = prefix > bound if strict else prefix >= bound
            if above:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def count(self, constraint: PrefixConstraint) -> int:
        lower = constraint.exact + (constraint.low,)
        upper = constraint.exact + (constraint.high,)
        if constraint.low > constraint.high:  # empty interval
            return 0
        start = self.first_index_above(lower, strict=False)
        stop = self.first_index_above(upper, strict=True)
        return stop - start


class DirectAccessFromCounting:
    """Direct access on top of prefix counting (Prop. 35, ⇐).

    Fixes the variables of the order one by one; each is found by binary
    search over the sorted domain, comparing cumulative interval counts
    with the remaining index.

    Args:
        counter: the prefix-constraint counting oracle.
        order_length: number of variables of the order.
        domain: the database domain, sorted ascending.
    """

    def __init__(
        self,
        counter: SupportsPrefixCounting,
        order_length: int,
        domain: Sequence,
    ):
        self._counter = counter
        self._order_length = order_length
        self._domain = sorted(domain)
        if not self._domain:
            self._total = 0
        elif order_length == 0:
            raise ReproError("direct access needs at least one variable")
        else:
            self._total = counter.count(
                PrefixConstraint(
                    (), self._domain[0], self._domain[-1]
                )
            )

    def __len__(self) -> int:
        return self._total

    def tuple_at(self, index: int) -> tuple:
        if index < 0 or index >= self._total:
            raise OutOfBoundsError(
                f"index {index} out of range [0, {self._total})"
            )
        remaining = index
        exact: tuple = ()
        domain = self._domain
        smallest = domain[0]
        for _ in range(self._order_length):
            lo, hi = 0, len(domain) - 1
            # Smallest position p with count(value <= domain[p]) > remaining.
            while lo < hi:
                mid = (lo + hi) // 2
                below = self._counter.count(
                    PrefixConstraint(exact, smallest, domain[mid])
                )
                if below > remaining:
                    hi = mid
                else:
                    lo = mid + 1
            value = domain[lo]
            if lo > 0:
                remaining -= self._counter.count(
                    PrefixConstraint(exact, smallest, domain[lo - 1])
                )
            exact = exact + (value,)
        return exact
