"""Projections and partial lexicographic orders (Definition 49, Theorem 50).

A partial lexicographic order lists only some of the free variables; the
produced order on answers must refine the preorder it induces. The
incompatibility number of a conjunctive query and partial order is the
minimum, over all completions that start with the partial order and end
with the projected variables, of the completion's incompatibility number.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import permutations

from repro.core.access import DirectAccess
from repro.core.decomposition import DisruptionFreeDecomposition
from repro.data.database import Database
from repro.query.query import ConjunctiveQuery, JoinQuery
from repro.query.variable_order import VariableOrder


def completions(
    query: ConjunctiveQuery | JoinQuery, partial: VariableOrder
):
    """Yield the orders of ``L+_Q``: start with ``partial``, end projected.

    The middle (unlisted free variables) and the projected suffix range
    over all permutations.
    """
    partial.validate_for(query, partial=True)
    free = query.free_variables
    listed = set(partial)
    middle = [v for v in free if v not in listed]
    if isinstance(query, ConjunctiveQuery):
        projected = list(query.projected_variables)
    else:
        projected = []
    for mid in permutations(middle):
        for tail in permutations(projected):
            yield VariableOrder(list(partial) + list(mid) + list(tail))


def partial_order_incompatibility(
    query: ConjunctiveQuery | JoinQuery, partial: VariableOrder
) -> tuple[Fraction, VariableOrder]:
    """Definition 49: min incompatibility number over completions."""
    best: Fraction | None = None
    best_order: VariableOrder | None = None
    base = (
        query.as_join_query()
        if isinstance(query, ConjunctiveQuery)
        else query
    )
    for order in completions(query, partial):
        value = DisruptionFreeDecomposition(
            base, order
        ).incompatibility_number
        if best is None or value < best:
            best = value
            best_order = order
    assert best is not None and best_order is not None
    return best, best_order


def partial_order_access(
    query: ConjunctiveQuery | JoinQuery,
    partial: VariableOrder,
    database: Database,
) -> DirectAccess:
    """Theorem 50: direct access compatible with a partial order.

    Picks an optimal completion, preprocesses the disruption-free
    decomposition for it (``O(|D|^ι)``), and eliminates the projected
    variables — they sit at the end of the completion, i.e. at the start
    of the elimination order, so their bags reduce to existence filters.
    Access time stays logarithmic.
    """
    _, completion = partial_order_incompatibility(query, partial)
    base = (
        query.as_join_query()
        if isinstance(query, ConjunctiveQuery)
        else query
    )
    projected = (
        frozenset(query.projected_variables)
        if isinstance(query, ConjunctiveQuery)
        else frozenset()
    )
    return DirectAccess(base, completion, database, projected=projected)
