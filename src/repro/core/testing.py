"""The *testing* task (§2.2): is a given tuple a query answer?

After preprocessing, the user specifies a tuple of constants and learns
whether it belongs to ``Q(D)``. Direct access solves testing with a
binary search over the sorted answer array (the same observation as
Proposition 19): answers sharing a prefix are contiguous.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.counting import CountingFromDirectAccess
from repro.errors import OrderError


class AnswerTester:
    """Membership testing over a direct-access structure.

    Args:
        access: any object with ``__len__``/``tuple_at`` whose answers
            are sorted tuples over ``variables``.
        variables: the variable order of the access structure's tuples
            (defaults to ``access.free_variables``).
    """

    def __init__(self, access, variables: Sequence[str] | None = None):
        self._access = access
        self._counter = CountingFromDirectAccess(access)
        if variables is None:
            variables = access.free_variables
        self._variables = tuple(variables)

    @property
    def variables(self) -> tuple[str, ...]:
        return self._variables

    def contains(self, answer: tuple) -> bool:
        """Whether ``answer`` (a tuple over the order) is in ``Q(D)``.

        One binary search: ``O(log |Q(D)|)`` accesses.
        """
        if len(answer) != len(self._variables):
            raise OrderError(
                f"expected a tuple over {self._variables}"
            )
        answer = tuple(answer)
        index = self._counter.first_index_above(answer)
        if index >= len(self._access):
            return False
        return self._access.tuple_at(index) == answer

    def contains_mapping(self, answer: dict[str, object]) -> bool:
        """Membership for an answer given as a variable -> value map."""
        return self.contains(
            tuple(answer[v] for v in self._variables)
        )

    def rank(self, answer: tuple) -> int:
        """The index of ``answer`` in the sorted answer array.

        The inverse of direct access. Raises KeyError when the tuple is
        not an answer.
        """
        answer = tuple(answer)
        index = self._counter.first_index_above(answer)
        if (
            index < len(self._access)
            and self._access.tuple_at(index) == answer
        ):
            return index
        raise KeyError(f"{answer} is not an answer")

    def count_with_prefix(self, prefix: tuple) -> int:
        """How many answers start with ``prefix`` (contiguity argument)."""
        if not prefix:
            return len(self._access)
        start = self._counter.first_index_above(tuple(prefix))
        stop = self._counter.first_index_above(
            tuple(prefix), strict=True
        )
        return stop - start
