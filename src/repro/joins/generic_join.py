"""Generic Join — a worst-case optimal join algorithm (Theorem 2).

Computes the natural join of a set of tables in time
``Õ(|D|^{ρ*} + output)`` where ``ρ*`` is the fractional edge cover number
of the schema hypergraph [Ngo, Porat, Ré, Rudra; Veldhuizen; Ngo, Ré,
Rudra]. Variables are processed in a fixed global order; at each variable
the candidate values are the intersection of the matching trie levels,
computed by probing from the smallest level.

Because candidates are visited in sorted order, :func:`generic_join_iter`
yields answers in the lexicographic order of the variable order — which
also makes it the brute-force oracle for direct access tests.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.data.database import Database
from repro.engine.registry import get_engine
from repro.joins.operators import Table
from repro.joins.trie import Trie
from repro.query.query import JoinQuery


def generic_join_iter(
    tables: Sequence[Table], variable_order: Sequence[str]
) -> Iterator[tuple]:
    """Yield join answers as tuples over ``variable_order`` (lex order)."""
    variable_order = list(variable_order)
    order_position = {v: i for i, v in enumerate(variable_order)}
    covered = {v for table in tables for v in table.schema}
    if set(variable_order) != covered:
        raise ValueError(
            "variable order must cover exactly the joined variables"
        )

    tries: list[Trie] = []
    for table in tables:
        columns = sorted(table.schema, key=order_position.__getitem__)
        tries.append(Trie(table, columns))

    # For each variable, the tries whose next level branches on it, and at
    # which depth.
    at_variable: list[list[tuple[Trie, int]]] = [
        [] for _ in variable_order
    ]
    for trie in tries:
        for depth, variable in enumerate(trie.column_order):
            at_variable[order_position[variable]].append((trie, depth))

    # node_stack[t] holds the current node of trie t per bound level.
    current: list[dict] = [trie.root for trie in tries]
    trie_index = {id(trie): i for i, trie in enumerate(tries)}
    answer: list = [None] * len(variable_order)

    def recurse(level: int) -> Iterator[tuple]:
        if level == len(variable_order):
            yield tuple(answer)
            return
        participants = at_variable[level]
        if not participants:
            raise ValueError(
                f"variable {variable_order[level]} occurs in no table"
            )
        nodes = [current[trie_index[id(trie)]] for trie, _ in participants]
        smallest = min(nodes, key=len)
        for value in sorted(smallest):
            if all(value in node for node in nodes):
                answer[level] = value
                saved = []
                for (trie, _depth), node in zip(participants, nodes):
                    i = trie_index[id(trie)]
                    saved.append((i, current[i]))
                    child = node[value]
                    current[i] = child if child is not True else {}
                yield from recurse(level + 1)
                for i, node in saved:
                    current[i] = node
        answer[level] = None

    return recurse(0)


def generic_join(
    tables: Sequence[Table], variable_order: Sequence[str]
) -> Table:
    """Materialize the natural join of ``tables`` as a Table.

    Routed through the active engine: the Python engine materializes the
    trie-based :func:`generic_join_iter`, the numpy engine runs the same
    variable-at-a-time intersection on dictionary-encoded columns.
    """
    return get_engine().join(tables, variable_order)


def tables_of_query(query: JoinQuery, database: Database) -> list[Table]:
    """One Table per atom of ``query`` interpreted over ``database``."""
    database.validate_for(query)
    return [
        Table.from_atom(atom, database[atom.relation])
        for atom in query.atoms
    ]


def evaluate(
    query: JoinQuery,
    database: Database,
    variable_order: Sequence[str] | None = None,
) -> Table:
    """Compute ``Q(D)`` with Generic Join.

    The result schema follows ``variable_order`` when given, else the
    query's first-occurrence variable order. For a
    :class:`~repro.query.query.ConjunctiveQuery` the projection is applied
    after the join (the baseline semantics; efficient projection handling
    lives in :mod:`repro.core.projections`).
    """
    order = list(variable_order or query.variables)
    result = generic_join(tables_of_query(query, database), order)
    free = query.free_variables
    if set(free) != set(order):
        result = result.project(free)
    return result
