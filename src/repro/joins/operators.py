"""Named-schema relational algebra.

A :class:`Table` pairs a schema (distinct variable names) with a set of
rows; it is the working representation inside the join algorithms, while
:class:`~repro.data.relation.Relation` is the stored representation.
Atoms with repeated variables turn into tables over the *set* of
variables, keeping only rows where the repeated columns agree.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.data.relation import Relation
from repro.errors import DatabaseError
from repro.query.atoms import Atom


class Table:
    """An immutable relation with named columns."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Iterable[str], rows: Iterable[tuple]):
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise DatabaseError(f"schema {self.schema} repeats a column")
        self.rows: frozenset[tuple] = frozenset(
            tuple(r) for r in rows
        )
        for row in self.rows:
            if len(row) != len(self.schema):
                raise DatabaseError(
                    f"row {row} does not fit schema {self.schema}"
                )

    @classmethod
    def from_atom(cls, atom: Atom, relation: Relation) -> "Table":
        """Interpret ``relation`` through ``atom``.

        Repeated variables are collapsed: only rows assigning equal values
        to equal variables survive, and each variable keeps one column.
        """
        if relation.arity != atom.arity:
            raise DatabaseError(
                f"{atom} expects arity {atom.arity}, relation has "
                f"{relation.arity}"
            )
        schema: list[str] = []
        for var in atom.variables:
            if var not in schema:
                schema.append(var)
        rows = set()
        for raw in relation.tuples:
            binding = atom.binding(raw)
            if binding is not None:
                rows.add(tuple(binding[v] for v in schema))
        return cls(schema, rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({list(self.schema)}, n={len(self.rows)})"

    def __eq__(self, other) -> bool:
        if isinstance(other, Table):
            return self.schema == other.schema and self.rows == other.rows
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.schema, self.rows))

    def _positions(self, variables: Iterable[str]) -> list[int]:
        index = {v: i for i, v in enumerate(self.schema)}
        try:
            return [index[v] for v in variables]
        except KeyError as exc:
            raise DatabaseError(
                f"{exc.args[0]} is not a column of {self!r}"
            ) from None

    def project(self, variables: Iterable[str]) -> "Table":
        """Project onto ``variables`` (which must be in the schema)."""
        variables = tuple(variables)
        positions = self._positions(variables)
        return Table(
            variables,
            {tuple(row[p] for p in positions) for row in self.rows},
        )

    def select(self, assignment: dict[str, object]) -> "Table":
        """Keep rows consistent with a partial assignment."""
        bound = [
            (i, assignment[v])
            for i, v in enumerate(self.schema)
            if v in assignment
        ]
        return Table(
            self.schema,
            {
                row
                for row in self.rows
                if all(row[i] == value for i, value in bound)
            },
        )

    def semijoin(self, other: "Table") -> "Table":
        """``self ⋉ other``: keep rows matching ``other`` on shared columns."""
        shared = [v for v in self.schema if v in other.schema]
        if not shared:
            return self if other.rows else Table(self.schema, ())
        mine = self._positions(shared)
        theirs = other._positions(shared)
        keys = {tuple(row[p] for p in theirs) for row in other.rows}
        return Table(
            self.schema,
            {
                row
                for row in self.rows
                if tuple(row[p] for p in mine) in keys
            },
        )

    def natural_join(self, other: "Table") -> "Table":
        """Hash join on shared columns."""
        shared = [v for v in self.schema if v in other.schema]
        extra = [v for v in other.schema if v not in self.schema]
        out_schema = self.schema + tuple(extra)
        theirs_shared = other._positions(shared)
        theirs_extra = other._positions(extra)
        buckets: dict[tuple, list[tuple]] = {}
        for row in other.rows:
            key = tuple(row[p] for p in theirs_shared)
            buckets.setdefault(key, []).append(
                tuple(row[p] for p in theirs_extra)
            )
        mine_shared = self._positions(shared)
        rows = set()
        for row in self.rows:
            key = tuple(row[p] for p in mine_shared)
            for suffix in buckets.get(key, ()):
                rows.add(row + suffix)
        return Table(out_schema, rows)

    def rows_as_dicts(self) -> Iterable[dict[str, object]]:
        """Yield rows as variable -> constant mappings."""
        for row in self.rows:
            yield dict(zip(self.schema, row))

    def to_relation(self) -> Relation:
        """Forget column names, producing a stored Relation."""
        return Relation(self.rows, arity=len(self.schema))


def cross_product(tables: Iterable[Table]) -> Table:
    """Cartesian product of tables with pairwise disjoint schemas."""
    result: Table | None = None
    for table in tables:
        result = table if result is None else result.natural_join(table)
    if result is None:
        raise DatabaseError("cross product of zero tables")
    return result
