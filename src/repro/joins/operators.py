"""Named-schema relational algebra.

A :class:`Table` pairs a schema (distinct variable names) with a set of
rows; it is the working representation inside the join algorithms, while
:class:`~repro.data.relation.Relation` is the stored representation.
Atoms with repeated variables turn into tables over the *set* of
variables, keeping only rows where the repeated columns agree.

Tuple-level work is routed through the active execution engine
(:mod:`repro.engine`): the Python engine operates on the ``rows``
frozenset directly, while the numpy engine operates on a
dictionary-encoded columnar mirror and materializes ``rows`` lazily —
observable behavior (row sets, equality, hashing) is identical either
way.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.data.relation import Relation
from repro.engine.registry import get_engine
from repro.errors import DatabaseError
from repro.query.atoms import Atom


class Table:
    """An immutable relation with named columns."""

    __slots__ = ("schema", "_rows", "_columnar")

    def __init__(self, schema: Iterable[str], rows: Iterable[tuple]):
        self.schema: tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise DatabaseError(f"schema {self.schema} repeats a column")
        self._columnar = None
        self._rows: frozenset[tuple] | None = frozenset(
            tuple(r) for r in rows
        )
        for row in self._rows:
            if len(row) != len(self.schema):
                raise DatabaseError(
                    f"row {row} does not fit schema {self.schema}"
                )

    @classmethod
    def _from_columnar(cls, schema: tuple[str, ...], columnar) -> "Table":
        """Wrap an engine-produced columnar batch (rows decoded lazily).

        ``columnar`` must hold unique rows matching ``schema``'s arity.
        """
        table = object.__new__(cls)
        table.schema = tuple(schema)
        table._rows = None
        table._columnar = columnar
        return table

    @property
    def rows(self) -> frozenset[tuple]:
        """The row set (decoded from columnar storage on first use)."""
        if self._rows is None:
            self._rows = frozenset(self._columnar.to_rows())
        return self._rows

    @classmethod
    def from_atom(cls, atom: Atom, relation: Relation) -> "Table":
        """Interpret ``relation`` through ``atom``.

        Repeated variables are collapsed: only rows assigning equal values
        to equal variables survive, and each variable keeps one column.
        """
        if relation.arity != atom.arity:
            raise DatabaseError(
                f"{atom} expects arity {atom.arity}, relation has "
                f"{relation.arity}"
            )
        return get_engine().from_atom(atom, relation)

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return self._columnar.nrows

    def __repr__(self) -> str:
        return f"Table({list(self.schema)}, n={len(self)})"

    def __eq__(self, other) -> bool:
        if isinstance(other, Table):
            return self.schema == other.schema and self.rows == other.rows
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.schema, self.rows))

    def _positions(self, variables: Iterable[str]) -> list[int]:
        index = {v: i for i, v in enumerate(self.schema)}
        try:
            return [index[v] for v in variables]
        except KeyError as exc:
            raise DatabaseError(
                f"{exc.args[0]} is not a column of {self!r}"
            ) from None

    def project(self, variables: Iterable[str]) -> "Table":
        """Project onto ``variables`` (which must be in the schema)."""
        variables = tuple(variables)
        positions = self._positions(variables)
        return get_engine().project(self, variables, positions)

    def select(self, assignment: dict[str, object]) -> "Table":
        """Keep rows consistent with a partial assignment."""
        return get_engine().select(self, assignment)

    def semijoin(self, other: "Table") -> "Table":
        """``self ⋉ other``: keep rows matching ``other`` on shared columns."""
        return get_engine().semijoin(self, other)

    def natural_join(self, other: "Table") -> "Table":
        """Join on shared columns (hash join or vectorized merge join)."""
        return get_engine().natural_join(self, other)

    def sorted_rows(self) -> list[tuple]:
        """Rows in lexicographic order (engine-sorted)."""
        return get_engine().sorted_rows(self)

    def rows_as_dicts(self) -> Iterable[dict[str, object]]:
        """Yield rows as variable -> constant mappings."""
        for row in self.rows:
            yield dict(zip(self.schema, row))

    def to_relation(self) -> Relation:
        """Forget column names, producing a stored Relation."""
        return Relation(self.rows, arity=len(self.schema))


def cross_product(tables: Iterable[Table]) -> Table:
    """Cartesian product of tables with pairwise disjoint schemas."""
    result: Table | None = None
    for table in tables:
        result = table if result is None else result.natural_join(table)
    if result is None:
        raise DatabaseError("cross product of zero tables")
    return result
