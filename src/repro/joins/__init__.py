"""Join algorithms: relational operators, Generic Join, Yannakakis."""

from repro.joins.generic_join import (
    evaluate,
    generic_join,
    generic_join_iter,
    tables_of_query,
)
from repro.joins.operators import Table, cross_product
from repro.joins.trie import Trie
from repro.joins.yannakakis import (
    acyclic_join,
    count_acyclic_join,
    full_reduce,
)

__all__ = [
    "Table",
    "Trie",
    "acyclic_join",
    "count_acyclic_join",
    "cross_product",
    "evaluate",
    "full_reduce",
    "generic_join",
    "generic_join_iter",
    "tables_of_query",
]
