"""Yannakakis-style processing of acyclic joins.

Provides the classic full reducer (two semijoin sweeps over a join tree)
and bottom-up answer counting. These are the [18]-era building blocks the
paper's direct-access engine rests on; the engine itself (with its
per-variable counting forest) lives in :mod:`repro.core.access`.
"""

from __future__ import annotations

from repro.hypergraph.gyo import join_tree
from repro.hypergraph.hypergraph import Hypergraph
from repro.joins.operators import Table


def _tree_of_tables(tables: list[Table]) -> list[tuple[int, int | None]]:
    """Arrange tables into a join forest via their schema hypergraph.

    Returns ``(index, parent_index)`` pairs in a bottom-up-safe order
    (children before parents). Tables whose schema is covered by another
    table's schema hang below a covering table.
    """
    vertices = {v for t in tables for v in t.schema}
    schemas = [frozenset(t.schema) for t in tables]
    hypergraph = Hypergraph(vertices, schemas)
    parent_map = join_tree(hypergraph)  # on maximal distinct schemas

    # Representative table per maximal schema.
    representative: dict[frozenset, int] = {}
    for i, schema in enumerate(schemas):
        if schema in parent_map and schema not in representative:
            representative[schema] = i

    edges: list[tuple[int, int | None]] = []
    assigned: set[int] = set()
    for schema, parent_schema in parent_map.items():
        rep = representative[schema]
        if parent_schema is None:
            edges.append((rep, None))
        else:
            edges.append((rep, representative[parent_schema]))
        assigned.add(rep)
    # Non-representative tables (duplicates / covered schemas) hang below
    # a covering representative.
    for i, schema in enumerate(schemas):
        if i in assigned:
            continue
        host = next(
            rep
            for covering, rep in representative.items()
            if schema <= covering
        )
        edges.append((i, host))

    # Order children before parents (roots last).
    children: dict[int | None, list[int]] = {}
    for child, parent in edges:
        children.setdefault(parent, []).append(child)
    ordered: list[tuple[int, int | None]] = []
    parent_of = dict(edges)

    def visit(node: int) -> None:
        for child in children.get(node, ()):
            visit(child)
        ordered.append((node, parent_of[node]))

    for root in children.get(None, ()):
        visit(root)
    return ordered


def full_reduce(tables: list[Table]) -> list[Table]:
    """Make an acyclic set of tables globally consistent.

    Two semijoin sweeps (bottom-up, then top-down) over a join forest.
    After reduction, every remaining row participates in some join answer.
    Raises ValueError when the schema hypergraph is cyclic.
    """
    order = _tree_of_tables(tables)
    reduced = list(tables)
    for child, parent in order:  # bottom-up
        if parent is not None:
            reduced[parent] = reduced[parent].semijoin(reduced[child])
    for child, parent in reversed(order):  # top-down
        if parent is not None:
            reduced[child] = reduced[child].semijoin(reduced[parent])
    return reduced


def acyclic_join(tables: list[Table]) -> Table:
    """Evaluate an acyclic join: full reduction, then joins up the forest.

    Output-sensitive: after reduction every intermediate result is no
    larger than the final output times the query size.
    """
    reduced = full_reduce(tables)
    order = _tree_of_tables(tables)
    merged = list(reduced)
    result: Table | None = None
    for child, parent in order:
        if parent is not None:
            merged[parent] = merged[parent].natural_join(merged[child])
        else:
            part = merged[child]
            result = part if result is None else result.natural_join(part)
    assert result is not None
    return result


def count_acyclic_join(tables: list[Table]) -> int:
    """Count join answers of an acyclic join without materializing them.

    Bottom-up aggregation of per-row multiplicities over the join forest.
    """
    order = _tree_of_tables(tables)
    weights: list[dict[tuple, int]] = [
        {row: 1 for row in table.rows} for table in tables
    ]
    total = 1
    for child, parent in order:
        child_table = tables[child]
        if parent is None:
            total *= sum(weights[child].values())
            continue
        parent_table = tables[parent]
        shared = [v for v in parent_table.schema if v in child_table.schema]
        child_positions = [child_table.schema.index(v) for v in shared]
        parent_positions = [
            parent_table.schema.index(v) for v in shared
        ]
        grouped: dict[tuple, int] = {}
        for row, weight in weights[child].items():
            key = tuple(row[p] for p in child_positions)
            grouped[key] = grouped.get(key, 0) + weight
        new_weights = {}
        for row, weight in weights[parent].items():
            key = tuple(row[p] for p in parent_positions)
            factor = grouped.get(key, 0)
            if factor:
                new_weights[row] = weight * factor
        weights[parent] = new_weights
    return total
