"""Sorted tries over table rows, the index structure behind Generic Join."""

from __future__ import annotations

from repro.joins.operators import Table


class Trie:
    """A nested-dictionary trie over a table, in a fixed column order.

    Level ``i`` of the trie branches on the ``i``-th variable of
    ``column_order``; leaves (at full depth) map to ``True``. Iterating a
    level in sorted key order yields values in the domain order.
    """

    __slots__ = ("column_order", "root")

    def __init__(self, table: Table, column_order: list[str]):
        if set(column_order) != set(table.schema):
            raise ValueError(
                f"column order {column_order} must be a permutation of "
                f"schema {table.schema}"
            )
        self.column_order = list(column_order)
        positions = [table.schema.index(v) for v in column_order]
        self.root: dict = {}
        for row in table.sorted_rows():
            node = self.root
            for position in positions[:-1]:
                node = node.setdefault(row[position], {})
            node[row[positions[-1]]] = True

    def depth(self) -> int:
        return len(self.column_order)
