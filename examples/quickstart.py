"""Quickstart: lexicographic direct access on a join query.

Run with:  python examples/quickstart.py
"""

from repro import Database, DirectAccess, VariableOrder, parse_query

# A 2-path join: follows edges R then S.
query = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")

database = Database(
    {
        "R": {(1, 2), (3, 2), (3, 5)},
        "S": {(2, 7), (2, 9), (5, 1)},
    }
)

# The user picks the lexicographic order — here: sort by z first.
order = VariableOrder(["z", "x", "y"])
access = DirectAccess(query, order, database)

print(f"query:   {query}")
print(f"order:   {list(order)}")
print(f"answers: {len(access)} (never materialized)")
print(f"ι (incompatibility number): "
      f"{access.preprocessing.incompatibility_number}")
print()

for index in range(len(access)):
    print(f"  answer[{index}] = {access.tuple_at(index)}")

# Out-of-bounds indices raise, like the paper's out-of-bounds error:
from repro import OutOfBoundsError

try:
    access.tuple_at(len(access))
except OutOfBoundsError as error:
    print(f"\naccess past the end -> {error}")
