"""Quickstart: lexicographic direct access on a join query.

The public API is one prepared-query handle: ``repro.connect`` opens a
connection over a database, ``prepare`` preprocesses a query, and the
returned ``AnswerView`` behaves like the sorted list of answers —
without ever materializing it.

Run with:  python examples/quickstart.py
"""

import repro

# A 2-path join: follows edges R then S.
connection = repro.connect(
    {
        "R": {(1, 2), (3, 2), (3, 5)},
        "S": {(2, 7), (2, 9), (5, 1)},
    }
)

# The user picks the lexicographic order — here: sort by z first.
view = connection.prepare(
    "Q(x, y, z) :- R(x, y), S(y, z)", order=["z", "x", "y"]
)

print(f"query:   {view.query}")
print(f"order:   {list(view.order)}")
print(f"answers: {len(view)} (never materialized)")
print()

# Sequence semantics: indexing, negative indices, slices, iteration.
for index, answer in enumerate(view):
    print(f"  view[{index}] = {answer}")
print(f"\nlast answer:      view[-1]   = {view[-1]}")
print(f"middle two (lazy): view[1:3]  = {list(view[1:3])}")

# Inverse access: answer -> index, in O(log) time, and it round-trips.
answer = view[2]
print(f"\nview.rank({answer}) = {view.rank(answer)}")
print(f"{answer} in view -> {answer in view}")
print(f"(9, 9, 9) in view -> {(9, 9, 9) in view}")

# Out-of-bounds indices raise, like the paper's out-of-bounds error:
try:
    view[len(view)]
except repro.OutOfBoundsError as error:
    print(f"\naccess past the end -> {error}")
