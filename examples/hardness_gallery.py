"""A tour of the paper's lower-bound machinery, executed.

1. Incompatibility numbers classify query/order pairs (Theorem 44).
2. Star embedding (Lemma 15/17): hard pairs simulate star queries.
3. Set-disjointness through star direct access (Lemma 22 + Prop. 19).
4. Zero-3-Clique solved through the Theorem 27 reduction.

Run with:  python examples/hardness_gallery.py
"""

from repro import VariableOrder, incompatibility_number
from repro.core import DirectAccess
from repro.data.generators import random_database
from repro.lowerbounds import (
    MultipartiteInstance,
    SetSystem,
    StarDisjointness,
    StarEmbedding,
    ZeroCliqueViaSetIntersection,
    brute_force_zero_clique,
)
from repro.query.catalog import (
    example5_order,
    example5_query,
    example18_query,
    star_bad_order,
    star_good_order,
    star_query,
)

print("1. Incompatibility numbers (preprocessing exponent, Thm 44)")
for name, query, order in [
    ("star k=2, center first ", star_query(2), star_good_order(2)),
    ("star k=2, center last  ", star_query(2), star_bad_order(2)),
    ("Example 5  (Figure 1)  ", example5_query(), example5_order()),
    ("Example 18 (cyclic)    ", example18_query(), example5_order()),
]:
    iota = incompatibility_number(query, order)
    print(f"   {name} ι = {iota}")

print("\n2. Star embedding (Lemma 15): Example 5 embeds a 3-star")
embedding = StarEmbedding(example5_query(), example5_order())
for variable, roles in sorted(embedding.roles.items()):
    if roles:
        pretty = ", ".join(
            f"x{r[1]}" if r[0] == "x" else "z" for r in roles
        )
        print(f"   {variable} plays {pretty}")
star_db = random_database(star_query(3), 8, 3, seed=1)
database = embedding.transform_database(star_db)
access = DirectAccess(example5_query(), example5_order(), database)
print(f"   star database |D*| = {len(star_db)} -> |D| = {len(database)}; "
      f"{len(access)} answers, mapped back in bad star order:")
for index in range(min(3, len(access))):
    print(f"     {embedding.star_answer(access.answer_at(index))}")

print("\n3. 2-Set-Disjointness via star direct access (Lemma 22)")
instance = SetSystem.random(2, 6, 4, 10, seed=3)
oracle = StarDisjointness(instance)
for indices in [(0, 0), (1, 4), (2, 3)]:
    truth = not (
        instance.families[0][indices[0]]
        & instance.families[1][indices[1]]
    )
    answer = oracle.disjoint(indices)
    assert answer == truth
    print(f"   S_1,{indices[0]} ∩ S_2,{indices[1]} empty? {answer}")

print("\n4. Zero-3-Clique through the Theorem 27 reduction")
clique_instance = MultipartiteInstance.random(
    3, 8, weight_bound=40, plant_zero=True, seed=9
)
planted = brute_force_zero_clique(clique_instance)
reduction = ZeroCliqueViaSetIntersection(
    clique_instance, intervals=4, seed=2
)
found = reduction.find_zero_clique()
print(f"   brute force:    {planted}")
print(f"   via reduction:  {found}  (stats: {reduction.stats})")
assert found is not None
assert clique_instance.clique_weight(found) == 0
print("   reduction verified: weight of found clique is 0")
