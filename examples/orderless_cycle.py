"""Orderless direct access on the 4-cycle (Lemma 48).

Lexicographic direct access on the 4-cycle needs quadratic preprocessing
(its fractional hypertree width is 2); if *any* consistent ordering is
acceptable, the heavy/light split reaches |D|^{3/2}. This script builds a
skewed instance, runs both engines, and contrasts the bag budgets.

Run with:  python examples/orderless_cycle.py
"""

import time

from repro import Database, VariableOrder
from repro.core import OrderlessFourCycleAccess, Preprocessing
from repro.core.htw import fractional_hypertree_width
from repro.query.catalog import four_cycle_query

SCALE, SMALL = 120, 4
tall = {(a, b) for a in range(SCALE) for b in range(SMALL)}
wide = {(b, a) for b in range(SMALL) for a in range(SCALE)}
database = Database({"R1": tall, "R2": wide, "R3": tall, "R4": wide})

query = four_cycle_query()
width, best_order = fractional_hypertree_width(query)
print(f"4-cycle fractional hypertree width: {width} "
      f"(so every lexicographic order pays |D|^{width})")
print(f"|D| = {len(database)}\n")

start = time.perf_counter()
lex = Preprocessing(
    query, VariableOrder(["x1", "x2", "x3", "x4"]), database
)
lex_time = time.perf_counter() - start
lex_bag = max(len(p.table) for p in lex.bags)
print(f"lexicographic engine: {lex_time * 1e3:.0f} ms, "
      f"largest bag {lex_bag} tuples")

start = time.perf_counter()
orderless = OrderlessFourCycleAccess(database)
orderless_time = time.perf_counter() - start
print(f"orderless engine:     {orderless_time * 1e3:.0f} ms, "
      f"largest bag {orderless.bag_budget} tuples")

print(f"\n{len(orderless)} answers; a few via the simulated bijection:")
for index in range(0, len(orderless), max(1, len(orderless) // 5)):
    print(f"  answer[{index}] = {orderless.tuple_at(index)}")
