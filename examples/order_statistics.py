"""Median and boxplot of a join result without materializing it.

The motivating §1 scenario: a ratings join whose output is far larger
than the input. Direct access simulates the sorted answer array, so
median/quantiles cost a handful of logarithmic accesses — all exposed
as methods on the prepared ``AnswerView``.

Run with:  python examples/order_statistics.py
"""

import random
import time

import repro

rng = random.Random(42)

# Streaming-service-shaped data: users rate titles; titles have genres.
# Joining on title yields (rating, title, user, genre) combinations.
USERS, TITLES, GENRES = 400, 120, 8
ratings = {
    (rng.randint(1, 10), t, u)
    for u in range(USERS)
    for t in rng.sample(range(TITLES), 6)
}
catalog = {(t, g) for t in range(TITLES) for g in rng.sample(range(GENRES), 2)}

connection = repro.connect({"Ratings": ratings, "Catalog": catalog})

# Sort by score first: order statistics over the rating distribution of
# the *joined* result (ratings weighted by genre memberships).
start = time.perf_counter()
view = connection.prepare(
    "Q(score, title, user, genre) :- "
    "Ratings(score, title, user), Catalog(title, genre)",
    order=["score", "title", "user", "genre"],
)
print(f"|D| = {len(connection.database)} input tuples")
print(f"|Q(D)| = {len(view)} join answers "
      f"(preprocessed in {time.perf_counter() - start:.2f}s, "
      f"not materialized)")

start = time.perf_counter()
mid = view.median()
summary = view.boxplot()
elapsed = time.perf_counter() - start
print(f"\nmedian joined rating: {mid[0]}  (answer {mid})")
print("boxplot over joined scores:")
for key in ("min", "q1", "median", "q3", "max"):
    print(f"  {key:>6}: score={summary[key][0]}")
print(f"(both computed in {elapsed * 1e3:.2f} ms — "
      "a few binary searches)")

print("\n5 uniform answers without repetition:")
for answer in view.sample(5, seed=7):
    score, title, user, genre = answer
    print(f"  user {user} rated title {title} (genre {genre}): {score}")

# Inverse access: where does a given rating combination rank?
answer = view.sample(1, seed=11)[0]
rank = view.rank(answer)
print(f"\n{answer} sits at rank {rank} of {len(view)} "
      f"({100 * rank / len(view):.1f}th percentile) — "
      "found by descending the counting forest, not by scanning")
