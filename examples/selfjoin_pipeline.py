"""Theorem 33, live: serving a self-join-free query through an engine
that only understands the self-join version.

``Q(x, y) :- R(x), R(y)`` uses one relation twice. Its self-join-free
version ``Q^sf(x, y) :- R_x(x), R_y(y)`` looks harder for reductions —
but Section 6 proves (constructively!) that any direct-access algorithm
for ``Q`` serves ``Q^sf`` too: color the constants, re-count through
clone databases and a Vandermonde solve, divide by automorphisms, and
binary-search the counts back into accesses.

Run with:  python examples/selfjoin_pipeline.py
"""

from repro import Database, VariableOrder, parse_query
from repro.core.selfjoins import SelfJoinFreeAccess
from repro.query.transforms import automorphisms, self_join_free_version

query = parse_query("Q(x, y) :- R(x), R(y)")
print(f"query with self-joins:   {query}")
print(f"self-join-free version:  {self_join_free_version(query)}")
print(f"automorphisms of A_Q:    {len(automorphisms(query))} "
      "(the swap x<->y and the identity)")

# A database for the self-join-free version: different relations per atom.
database = Database(
    {
        "R__x": {(1,), (3,), (5,)},
        "R__y": {(2,), (3,)},
    }
)
order = VariableOrder(["x", "y"])

access = SelfJoinFreeAccess(query, order, database)
print(f"\n{len(access)} answers of Q^sf, via the Section 6 pipeline:")
for index in range(len(access)):
    print(f"  answers[{index}] = {access.tuple_at(index)}")

# The pipeline under the hood: show one counting step's ingredients.
counter = access._inner._counter  # the Lemma 36 counter
print("\npipeline internals (Lemma 36):")
print(f"  clone databases built: {len(counter._counters)} "
      "(one per (T ⊆ var(Q), j ∈ [v+1]))")
print(f"  |aut(A_Q, c)| by prefix length: {counter._aut_count}")
