"""Ranked pagination over a join: jump to any page in O(log) time.

A product search joins suppliers to offers; the UI shows page 37 of the
price-ranked results. Materializing the join to serve one page wastes
work proportional to the full output; a prepared ``AnswerView`` serves
any page in logarithmic time per row after (near-)linear preprocessing
— ``view.page`` or, equivalently, a lazy slice.

Run with:  python examples/ranked_pagination.py
"""

import random
import time

import repro
from repro.joins.generic_join import evaluate

rng = random.Random(7)

SUPPLIERS, PRODUCTS = 300, 300
offers = {
    (rng.randint(100, 9999), p, s)
    for s in range(SUPPLIERS)
    for p in rng.sample(range(PRODUCTS), 40)
}
regions = {(s, r) for s in range(SUPPLIERS) for r in range(3)}

connection = repro.connect({"Offers": offers, "Regions": regions})

start = time.perf_counter()
view = connection.prepare(
    "Q(price, product, supplier, region) :- "
    "Offers(price, product, supplier), Regions(supplier, region)",
    order=["price", "product", "supplier", "region"],
)
prep = time.perf_counter() - start

PAGE, SIZE = 37, 10
start = time.perf_counter()
rows = view.page(PAGE, SIZE)
page_time = time.perf_counter() - start
# A page is also just a lazy slice of the view:
assert rows == list(view[PAGE * SIZE:(PAGE + 1) * SIZE])

print(f"{len(view)} ranked offers from "
      f"|D| = {len(connection.database)} tuples")
print(f"preprocessing: {prep:.2f}s; page fetch: {page_time * 1e3:.2f} ms")
print(f"\npage {PAGE} (offers {PAGE * SIZE}..{PAGE * SIZE + SIZE - 1}):")
print(f"{'price':>7}  {'product':>7}  {'supplier':>8}  {'region':>6}")
for price, product, supplier, region in rows:
    print(f"{price:>7}  {product:>7}  {supplier:>8}  {region:>6}")

# Compare against materialize-and-sort for serving this single page.
start = time.perf_counter()
table = evaluate(view.query, connection.database, list(view.order))
materialized = sorted(table.rows)[PAGE * SIZE: PAGE * SIZE + SIZE]
naive = time.perf_counter() - start
assert materialized == rows
print(f"\nmaterialize+sort for the same page: {naive:.2f}s "
      f"({naive / max(page_time, 1e-9):.0f}x the page fetch)")
