"""Ranked pagination over a join: jump to any page in O(log) time.

A product search joins suppliers to offers; the UI shows page 37 of the
price-ranked results. Materializing the join to serve one page wastes
work proportional to the full output; direct access serves any page in
logarithmic time per row after (near-)linear preprocessing.

Run with:  python examples/ranked_pagination.py
"""

import random
import time

from repro import Database, DirectAccess, VariableOrder, parse_query
from repro.core.tasks import page
from repro.joins.generic_join import evaluate

rng = random.Random(7)

SUPPLIERS, PRODUCTS = 300, 300
offers = {
    (rng.randint(100, 9999), p, s)
    for s in range(SUPPLIERS)
    for p in rng.sample(range(PRODUCTS), 40)
}
regions = {(s, r) for s in range(SUPPLIERS) for r in range(3)}

query = parse_query(
    "Q(price, product, supplier, region) :- "
    "Offers(price, product, supplier), Regions(supplier, region)"
)
database = Database({"Offers": offers, "Regions": regions})
order = VariableOrder(["price", "product", "supplier", "region"])

start = time.perf_counter()
access = DirectAccess(query, order, database)
prep = time.perf_counter() - start

PAGE, SIZE = 37, 10
start = time.perf_counter()
rows = page(access, PAGE, SIZE)
page_time = time.perf_counter() - start

print(f"{len(access)} ranked offers from |D| = {len(database)} tuples")
print(f"preprocessing: {prep:.2f}s; page fetch: {page_time * 1e3:.2f} ms")
print(f"\npage {PAGE} (offers {PAGE * SIZE}..{PAGE * SIZE + SIZE - 1}):")
print(f"{'price':>7}  {'product':>7}  {'supplier':>8}  {'region':>6}")
for price, product, supplier, region in rows:
    print(f"{price:>7}  {product:>7}  {supplier:>8}  {region:>6}")

# Compare against materialize-and-sort for serving this single page.
start = time.perf_counter()
table = evaluate(query, database, list(order))
materialized = sorted(table.rows)[PAGE * SIZE: PAGE * SIZE + SIZE]
naive = time.perf_counter() - start
assert materialized == rows
print(f"\nmaterialize+sort for the same page: {naive:.2f}s "
      f"({naive / max(page_time, 1e-9):.0f}x the page fetch)")
